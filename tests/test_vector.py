"""Vector tier: bit-for-bit equivalence with the stream kernel and engine.

:mod:`repro.predictors.vector` is the third execution tier; like the
stream kernel underneath it, it exists purely as a performance layer.  Its
contract is byte-identical :class:`PredictionStats` (counters, BTB
statistics, per-instruction mispredict masks) to
:func:`repro.predictors.engine.simulate` for every config whose
target-cache kind declares ``vectorizable`` traits.  These tests pin that
contract across all eight workloads and the paper's Table 4/7/9 design
space — non-vectorizable Table 7/9 cells exercise the trait-based
fallback through :func:`repro.runner.run_cells` instead — plus the
last-write recurrence's three sort paths and a hypothesis sweep of random
vectorizable :class:`EngineConfig`s.
"""

import numpy as np
import pytest

from repro.guest.isa import BranchKind
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    build_streams,
    decode_branches,
    simulate,
    simulate_many_vector,
    simulate_streamed,
    simulate_vector,
    stream_signature,
    vector_supported,
)
from repro.predictors.btb import UpdateStrategy
from repro.predictors.direction import DirectionConfig
from repro.predictors.history import PathFilter
from repro.predictors.registry import registration
from repro.predictors.vector import _last_write_predictions
from repro.runner import BACKENDS, SweepCell, run_cells
from repro.workloads import get_trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


def _pattern(bits=9):
    return HistoryConfig(source=HistorySource.PATTERN, bits=bits)


def _path(path_filter, bits=9, bits_per_target=1, address_bit=2):
    return HistoryConfig(
        source=HistorySource.PATH_GLOBAL, bits=bits,
        bits_per_target=bits_per_target, address_bit=address_bit,
        path_filter=path_filter,
    )


#: Every vectorizable slice of the paper's design space: the BTB-only
#: baselines, Table 4's tagless index schemes (gag/gas/gshare over pattern
#: history), Table 5/6-style path histories, the Table 9 bounding
#: predictors (oracle, last_target), and the routing edge cases.
VECTOR_CONFIGS = [
    EngineConfig(),
    EngineConfig(btb_strategy=UpdateStrategy.TWO_BIT),
    # Table 4 cells
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless", scheme="gag"),
                 history=_pattern()),
    EngineConfig(
        target_cache=TargetCacheConfig(kind="tagless", scheme="gas",
                                       history_bits=8, address_bits=1),
        history=_pattern(),
    ),
    EngineConfig(
        target_cache=TargetCacheConfig(kind="tagless", scheme="gas",
                                       history_bits=6, address_bits=3),
        history=_pattern(),
    ),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 history=_pattern()),
    # Table 5/6-style path histories feeding a tagless cache
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 history=_path(PathFilter.IND_JMP, bits_per_target=3)),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 history=_path(PathFilter.CALL_RET, address_bit=4)),
    EngineConfig(
        target_cache=TargetCacheConfig(kind="tagless"),
        history=HistoryConfig(source=HistorySource.PATH_PER_ADDRESS,
                              bits=9, bits_per_target=3),
    ),
    # Table 9 bounding predictors
    EngineConfig(target_cache=TargetCacheConfig(kind="oracle")),
    EngineConfig(target_cache=TargetCacheConfig(kind="last_target")),
    # routing edge cases
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless"),
                 target_cache_handles_returns=True),
    EngineConfig(target_cache_handles_returns=True),
    EngineConfig(direction=DirectionConfig(scheme="pas", history_bits=6,
                                           address_bits=4),
                 target_cache=TargetCacheConfig(kind="tagless")),
]

#: Table 7/9 cells with stateful replacement: supported by the stream
#: kernel but *not* vectorizable — the runner must degrade per cell.
FALLBACK_CONFIGS = [
    EngineConfig(target_cache=TargetCacheConfig(kind="tagged", entries=64,
                                                assoc=1)),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagged", entries=64,
                                                assoc=4)),
    EngineConfig(target_cache=TargetCacheConfig(kind="cascaded", entries=64,
                                                assoc=2)),
    EngineConfig(target_cache=TargetCacheConfig(kind="ittage", entries=128)),
]


def assert_identical(a, b):
    assert a.instructions == b.instructions
    assert a.btb_lookups == b.btb_lookups
    assert a.btb_hits == b.btb_hits
    for kind in BranchKind:
        assert a.counters(kind).executed == b.counters(kind).executed
        assert a.counters(kind).mispredicted == b.counters(kind).mispredicted
    if a.mispredict_mask is None:
        assert b.mispredict_mask is None
    else:
        assert np.array_equal(a.mispredict_mask, b.mispredict_mask)


class TestEquivalenceAcrossWorkloads:
    def test_bit_identical_on_every_workload(self, all_small_traces):
        for name, trace in all_small_traces.items():
            decoded = decode_branches(trace)
            streams_memo = {}
            for config in VECTOR_CONFIGS:
                assert vector_supported(config), config
                signature = stream_signature(config)
                streams = streams_memo.get(signature)
                if streams is None:
                    streams = build_streams(decoded, signature)
                    streams_memo[signature] = streams
                reference = simulate(trace, config, collect_mask=True,
                                     decoded=decoded)
                streamed = simulate_streamed(streams, config,
                                             collect_mask=True)
                vectored = simulate_vector(streams, config,
                                           collect_mask=True)
                assert_identical(vectored, reference)
                assert_identical(vectored, streamed)
            # the amortisation claim: one stream set served many cells
            assert len(streams_memo) < len(VECTOR_CONFIGS)

    def test_simulate_many_vector_matches_batch(self, perl_trace):
        decoded = decode_branches(perl_trace)
        configs = VECTOR_CONFIGS[:8]
        vectored = simulate_many_vector(decoded, configs)
        for config, got in zip(configs, vectored):
            assert_identical(
                got, simulate(perl_trace, config, decoded=decoded)
            )

    def test_masks_optional_like_reference(self, perl_trace):
        decoded = decode_branches(perl_trace)
        config = VECTOR_CONFIGS[5]
        streams = build_streams(decoded, stream_signature(config))
        assert simulate_vector(streams, config).mispredict_mask is None
        mask = simulate_vector(streams, config,
                               collect_mask=True).mispredict_mask
        assert mask is not None and mask.dtype == np.bool_


class TestSupport:
    def test_vectorizable_kinds_are_supported(self):
        for config in VECTOR_CONFIGS:
            assert vector_supported(config)

    def test_stateful_kinds_are_not_supported(self):
        for config in FALLBACK_CONFIGS:
            assert not vector_supported(config)
            kind = config.target_cache.kind
            assert not registration(kind).traits.vectorizable

    def test_stream_preconditions_carry_over(self):
        # The vector tier sits above the stream kernel, so anything the
        # stream kernel rejects (history wider than 64 bits feeding a
        # target cache) is unsupported here too.
        wide = EngineConfig(target_cache=TargetCacheConfig(),
                            history=_pattern(bits=65))
        assert not vector_supported(wide)

    def test_backends_trait_ranks_vector_first(self):
        assert registration("tagless").traits.backends() == (
            "vector", "streams", "engine"
        )
        assert registration("tagged").traits.backends() == (
            "streams", "engine"
        )

    def test_mismatched_signature_raises(self, perl_trace):
        decoded = decode_branches(perl_trace)
        streams = build_streams(decoded, stream_signature(EngineConfig()))
        with pytest.raises(ValueError, match="does not project"):
            simulate_vector(streams, EngineConfig(btb_sets=64))

    def test_non_vectorizable_kind_raises(self, perl_trace):
        decoded = decode_branches(perl_trace)
        config = FALLBACK_CONFIGS[0]
        streams = build_streams(decoded, stream_signature(config))
        with pytest.raises(ValueError, match="not.*vectorizable"):
            simulate_vector(streams, config)


class TestLastWriteRecurrence:
    """The kernel against a transparent per-row replay, on all sort paths."""

    @staticmethod
    def _replay(indices, updates, targets):
        table = {}
        valid = np.zeros(len(indices), dtype=bool)
        hits = np.zeros(len(indices), dtype=np.int64)
        for j, index in enumerate(indices):
            if index in table:
                valid[j] = True
                hits[j] = table[index]
            if updates[j]:
                table[index] = targets[j]
        return valid, hits

    def _assert_matches(self, indices, updates, targets):
        valid, hits = _last_write_predictions(indices, updates, targets)
        expected_valid, expected_hits = self._replay(indices, updates, targets)
        assert np.array_equal(valid, expected_valid)
        # hit values only matter where a structural hit exists
        assert np.array_equal(hits[valid], expected_hits[expected_valid])

    def _random_case(self, rng, n, index_pool):
        indices = rng.choice(index_pool, size=n)
        updates = rng.random(n) < 0.8
        targets = rng.integers(1, 1 << 40, size=n, dtype=np.int64)
        return indices, updates, targets

    def test_radix_path_small_indices(self):
        rng = np.random.default_rng(7)
        pool = np.arange(512, dtype=np.int64)  # max < 2**15
        self._assert_matches(*self._random_case(rng, 4000, pool))

    def test_composite_key_path_mid_indices(self):
        rng = np.random.default_rng(8)
        pool = rng.integers(1 << 15, 1 << 30, size=64, dtype=np.int64)
        indices, updates, targets = self._random_case(rng, 4000, pool)
        assert int(indices.max()) >= (1 << 15)  # past the radix tier
        assert int(indices.max()) < (1 << 62) // len(indices)
        self._assert_matches(indices, updates, targets)

    def test_stable_sort_path_huge_indices(self):
        rng = np.random.default_rng(9)
        pool = rng.integers(1 << 55, 1 << 61, size=16, dtype=np.int64)
        indices, updates, targets = self._random_case(rng, 1000, pool)
        assert int(indices.max()) >= (1 << 62) // len(indices)
        self._assert_matches(indices, updates, targets)

    def test_no_row_sees_its_own_update(self):
        # One index, every row updates: row j must see row j-1's target.
        indices = np.zeros(5, dtype=np.int64)
        updates = np.ones(5, dtype=bool)
        targets = np.arange(10, 15, dtype=np.int64)
        valid, hits = _last_write_predictions(indices, updates, targets)
        assert valid.tolist() == [False, True, True, True, True]
        assert hits[1:].tolist() == [10, 11, 12, 13]

    def test_non_updating_rows_are_skipped(self):
        indices = np.zeros(4, dtype=np.int64)
        updates = np.array([True, False, False, True])
        targets = np.array([10, 20, 30, 40], dtype=np.int64)
        valid, hits = _last_write_predictions(indices, updates, targets)
        assert valid.tolist() == [False, True, True, True]
        # rows 1-3 all read row 0's write; row 3's own write is unseen
        assert hits[1:].tolist() == [10, 10, 10]

    def test_empty_input(self):
        empty = np.zeros(0, dtype=np.int64)
        valid, hits = _last_write_predictions(
            empty, np.zeros(0, dtype=bool), empty
        )
        assert len(valid) == 0 and len(hits) == 0


class TestRunnerFallback:
    """run_cells degrades per cell: mixed sweeps stay bit-identical."""

    TRACE_LENGTH = 20_000

    def _cells(self):
        return [
            SweepCell("perl", config, collect_mask=True)
            for config in (VECTOR_CONFIGS[2], FALLBACK_CONFIGS[0],
                           VECTOR_CONFIGS[9], FALLBACK_CONFIGS[2],
                           EngineConfig())
        ]

    def test_every_backend_is_bit_identical(self):
        results = {
            backend: run_cells(self._cells(), jobs=1,
                               trace_length=self.TRACE_LENGTH,
                               backend=backend)
            for backend in BACKENDS
        }
        for backend in ("engine", "streams", "vector"):
            for got, want in zip(results[backend], results["auto"]):
                assert_identical(got, want)

    def test_pool_path_matches_serial(self):
        serial = run_cells(self._cells(), jobs=1,
                           trace_length=self.TRACE_LENGTH, backend="vector")
        pooled = run_cells(self._cells(), jobs=2,
                           trace_length=self.TRACE_LENGTH, backend="vector")
        for got, want in zip(pooled, serial):
            assert_identical(got, want)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_cells(self._cells(), jobs=1,
                      trace_length=self.TRACE_LENGTH, backend="simd")

    def test_experiment_context_validates_backend(self):
        from repro.experiments.common import ExperimentContext

        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentContext(backend="simd")


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestRandomConfigs:
    @pytest.fixture(scope="class")
    def small_trace(self):
        return get_trace("go", n_instructions=15_000, use_cache=False)

    @pytest.fixture(scope="class")
    def prepared(self, small_trace):
        return small_trace, decode_branches(small_trace), {}

    if HAVE_HYPOTHESIS:
        engine_configs = st.builds(
            EngineConfig,
            btb_sets=st.sampled_from([64, 256]),
            btb_ways=st.sampled_from([1, 4]),
            btb_strategy=st.sampled_from(list(UpdateStrategy)),
            direction=st.builds(
                DirectionConfig,
                scheme=st.sampled_from(["gshare", "gag", "gas", "pas"]),
                history_bits=st.integers(min_value=2, max_value=14),
                address_bits=st.integers(min_value=0, max_value=4),
            ),
            ras_depth=st.integers(min_value=1, max_value=32),
            target_cache=st.one_of(
                st.none(),
                st.builds(
                    TargetCacheConfig,
                    kind=st.sampled_from(
                        ["tagless", "oracle", "last_target"]
                    ),
                    scheme=st.sampled_from(["gag", "gas", "gshare"]),
                    history_bits=st.integers(min_value=2, max_value=10),
                    address_bits=st.integers(min_value=0, max_value=3),
                ),
            ),
            history=st.builds(
                HistoryConfig,
                source=st.sampled_from(list(HistorySource)),
                bits=st.integers(min_value=4, max_value=24),
                bits_per_target=st.integers(min_value=1, max_value=4),
                address_bit=st.integers(min_value=0, max_value=5),
                path_filter=st.sampled_from(list(PathFilter)),
            ),
            target_cache_handles_returns=st.booleans(),
        )

        @settings(max_examples=25, deadline=None)
        @given(config=engine_configs)
        def test_random_config_bit_identical(self, prepared, config):
            trace, decoded, streams_memo = prepared
            assert vector_supported(config)
            signature = stream_signature(config)
            streams = streams_memo.get(signature)
            if streams is None:
                streams = build_streams(decoded, signature)
                streams_memo[signature] = streams
            reference = simulate(trace, config, collect_mask=True,
                                 decoded=decoded)
            vectored = simulate_vector(streams, config, collect_mask=True)
            assert_identical(vectored, reference)
