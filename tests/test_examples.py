"""Smoke tests: every example script runs end to end.

Examples are part of the public API surface; each must execute cleanly at a
reduced trace length.  Run as subprocesses so import side effects and CLI
argument parsing are exercised exactly as a user would hit them.
"""

import os
import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: example script -> argv (kept small so the suite stays fast)
_CASES = {
    "quickstart.py": ["40000"],
    "interpreter_dispatch.py": [],
    "design_space.py": ["perl", "40000"],
    "pipeline_speedup.py": ["12000"],
    "custom_workload.py": [],
    "predictor_lineage.py": ["perl", "40000"],
    "run_ledger.py": ["20000"],
    "plugin_predictor.py": ["20000"],
}


def _run_example(name, args, tmp_path):
    env = dict(os.environ)
    env["REPRO_TRACE_CACHE"] = str(tmp_path)
    return subprocess.run(
        [sys.executable, str(_EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=420, env=env,
    )


@pytest.mark.parametrize("name,args", sorted(_CASES.items()))
def test_example_runs(name, args, tmp_path):
    result = _run_example(name, args, tmp_path)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"


def test_examples_directory_is_fully_covered():
    on_disk = {p.name for p in _EXAMPLES.glob("*.py")}
    assert on_disk == set(_CASES), (
        "new example scripts must be added to the smoke-test table"
    )
