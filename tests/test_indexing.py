"""Unit tests for the index schemes shared by predictors and target caches."""

import pytest

from repro.predictors.indexing import GAgIndex, GAsIndex, GShareIndex, parse_scheme


class TestGAg:
    def test_uses_history_only(self):
        scheme = GAgIndex(4)
        assert scheme.index(pc=0x1000, history=0b1010) == 0b1010
        assert scheme.index(pc=0x2000, history=0b1010) == 0b1010

    def test_masks_history(self):
        scheme = GAgIndex(3)
        assert scheme.index(0, 0b11111) == 0b111

    def test_table_size(self):
        assert GAgIndex(9).table_size == 512

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            GAgIndex(0)


class TestGAs:
    def test_address_selects_table(self):
        scheme = GAsIndex(history_bits=2, address_bits=1)
        # word address bit 0 selects the upper/lower half
        low = scheme.index(pc=0 << 2, history=0b11)
        high = scheme.index(pc=1 << 2, history=0b11)
        assert low == 0b011
        assert high == 0b111

    def test_history_selects_entry_within_table(self):
        scheme = GAsIndex(history_bits=3, address_bits=2)
        assert scheme.index(pc=0, history=0b101) == 0b101
        assert scheme.index(pc=0, history=0b001) == 0b001

    def test_table_size(self):
        assert GAsIndex(8, 1).table_size == 512
        assert GAsIndex(7, 2).table_size == 512

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            GAsIndex(0, 1)
        with pytest.raises(ValueError):
            GAsIndex(3, -1)


class TestGShare:
    def test_xors_address_and_history(self):
        scheme = GShareIndex(4)
        assert scheme.index(pc=0b1010 << 2, history=0b0110) == 0b1100

    def test_different_pcs_spread_same_history(self):
        scheme = GShareIndex(9)
        indices = {scheme.index(pc << 2, 0b101010101) for pc in range(32)}
        assert len(indices) == 32

    def test_alignment_bits_ignored(self):
        scheme = GShareIndex(6)
        assert scheme.index(0x100, 0) == scheme.index(0x100, 0)
        # pc bits below the word boundary never reach the index
        assert scheme.index(0x100, 5) == (0x100 >> 2 ^ 5) & 63


class TestParseScheme:
    def test_parse_all(self):
        assert isinstance(parse_scheme("gag", 9), GAgIndex)
        assert isinstance(parse_scheme("GAS", 8, 1), GAsIndex)
        assert isinstance(parse_scheme("gshare", 9), GShareIndex)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_scheme("bogus", 9)

    def test_indices_always_in_range(self):
        for scheme in (GAgIndex(9), GAsIndex(7, 2), GShareIndex(9)):
            for pc in range(0, 4096, 4):
                index = scheme.index(pc, pc * 2654435761)
                assert 0 <= index < scheme.table_size
