"""The ``repro bench`` baseline: payload shape, invariants, round-trips."""

import json

from repro.bench import (
    SCHEMA_VERSION,
    format_summary,
    run_bench,
    sweep_configs,
    write_bench,
)
from repro.cli import main
from repro.predictors import stream_signature, streams_supported

TRACE_LENGTH = 8_000


def _payload():
    return run_bench(workload="perl", trace_length=TRACE_LENGTH,
                     n_configs=3, rounds=1, use_trace_cache=False)


class TestSweepConfigs:
    def test_requested_count_and_single_signature(self):
        configs = sweep_configs(7)
        assert len(configs) == 7
        assert all(streams_supported(c) for c in configs)
        assert len({stream_signature(c) for c in configs}) == 1

    def test_configs_are_distinct_cells(self):
        configs = sweep_configs(6)
        assert len(set(configs)) == 6


class TestRunBench:
    def test_payload_schema(self):
        payload = _payload()
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["params"]["workload"] == "perl"
        assert payload["params"]["trace_length"] == TRACE_LENGTH
        for key in ("python", "platform", "numpy", "cpu_count"):
            assert key in payload["environment"]
        assert payload["trace"]["target_cache_subset"] > 0
        assert 0 < payload["trace"]["subset_fraction"] < 1
        assert payload["reference"]["total_s"] > 0
        assert payload["stream_kernel"]["build_s"] > 0
        assert payload["stream_kernel"]["warm_total_s"] > 0
        assert payload["speedup"]["per_cell"] > 0
        assert payload["speedup"]["including_build"] > 0

    def test_payload_is_json_serialisable(self, tmp_path):
        payload = _payload()
        path = tmp_path / "BENCH_sweep.json"
        write_bench(payload, path)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(payload)
        )

    def test_summary_mentions_the_headline_numbers(self):
        payload = _payload()
        text = format_summary(payload)
        assert "speedup" in text
        assert "perl" in text


def test_bench_command_writes_json(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    output = tmp_path / "BENCH_sweep.json"
    assert main(["bench", "perl", "--trace-length", str(TRACE_LENGTH),
                 "--rounds", "1", "--bench-output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    payload = json.loads(output.read_text())
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["params"]["workload"] == "perl"
