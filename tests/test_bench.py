"""The ``repro bench`` baseline: payload shape, invariants, round-trips."""

import json

from repro.bench import (
    SCHEMA_VERSION,
    append_history,
    format_summary,
    run_bench,
    sweep_configs,
    vector_sweep_configs,
    write_bench,
)
from repro.cli import main
from repro.predictors import (
    stream_signature,
    streams_supported,
    vector_supported,
)

TRACE_LENGTH = 8_000


def _payload():
    return run_bench(workload="perl", trace_length=TRACE_LENGTH,
                     n_configs=3, rounds=1, use_trace_cache=False)


class TestSweepConfigs:
    def test_requested_count_and_single_signature(self):
        configs = sweep_configs(7)
        assert len(configs) == 7
        assert all(streams_supported(c) for c in configs)
        assert len({stream_signature(c) for c in configs}) == 1

    def test_configs_are_distinct_cells(self):
        configs = sweep_configs(6)
        assert len(set(configs)) == 6

    def test_vector_configs_are_table4_cells_on_the_same_streams(self):
        configs = vector_sweep_configs()
        assert len(set(configs)) == len(configs) == 4
        assert all(vector_supported(c) for c in configs)
        # shares the tagged sweep's signature: the tier breakdown reuses
        # the streams the warm sweep already built
        signatures = {stream_signature(c) for c in configs + sweep_configs(1)}
        assert len(signatures) == 1


class TestRunBench:
    def test_payload_schema(self):
        payload = _payload()
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["params"]["workload"] == "perl"
        assert payload["params"]["trace_length"] == TRACE_LENGTH
        for key in ("python", "platform", "numpy", "cpu_count"):
            assert key in payload["environment"]
        assert payload["trace"]["target_cache_subset"] > 0
        assert 0 < payload["trace"]["subset_fraction"] < 1
        assert payload["reference"]["total_s"] > 0
        assert payload["stream_kernel"]["build_s"] > 0
        assert payload["stream_kernel"]["warm_total_s"] > 0
        assert payload["speedup"]["per_cell"] > 0
        assert payload["speedup"]["including_build"] > 0

    def test_payload_tier_breakdown(self):
        payload = _payload()
        tiers = payload["tiers"]
        assert tiers["n_configs"] == len(vector_sweep_configs())
        assert tiers["configs"] == "table4-tagless"
        for key in ("engine_per_cell_s", "streams_per_cell_s",
                    "vector_per_cell_s"):
            assert tiers[key] > 0
        # speedup ratios must be consistent with the timed metrics
        assert tiers["speedup"]["vector_vs_streams"] == (
            tiers["streams_per_cell_s"] / tiers["vector_per_cell_s"]
        )
        assert tiers["speedup"]["vector_vs_engine"] == (
            tiers["engine_per_cell_s"] / tiers["vector_per_cell_s"]
        )

    def test_payload_is_json_serialisable(self, tmp_path):
        payload = _payload()
        path = tmp_path / "BENCH_sweep.json"
        write_bench(payload, path)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(payload)
        )

    def test_summary_mentions_the_headline_numbers(self):
        payload = _payload()
        text = format_summary(payload)
        assert "speedup" in text
        assert "perl" in text
        assert "tiers" in text
        assert "vector speedup" in text

    def test_summary_tolerates_pre_tier_payloads(self):
        # Payloads from before the per-tier breakdown must still render
        # (repro report --compare reads historical BENCH_history.jsonl).
        payload = _payload()
        del payload["tiers"]
        text = format_summary(payload)
        assert "speedup" in text
        assert "vector" not in text


class TestHistory:
    def test_append_history_accumulates_jsonl_lines(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        first = _payload()
        second = _payload()
        append_history(first, path)
        append_history(second, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == json.loads(json.dumps(first))
        assert json.loads(lines[1]) == json.loads(json.dumps(second))

    def test_history_lines_are_single_line_payloads(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(_payload(), path)
        assert "\n" not in path.read_text().rstrip("\n")


def test_bench_command_writes_json(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    output = tmp_path / "BENCH_sweep.json"
    assert main(["bench", "perl", "--trace-length", str(TRACE_LENGTH),
                 "--rounds", "1", "--bench-output", str(output)]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    payload = json.loads(output.read_text())
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["params"]["workload"] == "perl"


def test_bench_command_versions_its_output(capsys, tmp_path, monkeypatch):
    """BENCH_sweep.json is always the latest run; history keeps them all."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    output = tmp_path / "BENCH_sweep.json"
    argv = ["bench", "perl", "--trace-length", str(TRACE_LENGTH),
            "--rounds", "1", "--bench-output", str(output)]
    assert main(argv) == 0
    first = json.loads(output.read_text())
    assert main(argv) == 0
    second = json.loads(output.read_text())
    history = tmp_path / "BENCH_history.jsonl"  # default: next to output
    lines = [json.loads(line) for line in history.read_text().splitlines()]
    assert len(lines) == 2
    assert lines[0] == first
    assert lines[1] == second
    capsys.readouterr()


def test_bench_command_honours_explicit_history_path(capsys, tmp_path,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    output = tmp_path / "BENCH_sweep.json"
    history = tmp_path / "custom" / "trajectory.jsonl"
    history.parent.mkdir()
    assert main(["bench", "perl", "--trace-length", str(TRACE_LENGTH),
                 "--rounds", "1", "--bench-output", str(output),
                 "--bench-history", str(history)]) == 0
    assert len(history.read_text().splitlines()) == 1
    assert not (tmp_path / "BENCH_history.jsonl").exists()
    capsys.readouterr()
