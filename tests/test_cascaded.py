"""Unit tests for the cascaded (filtered) target cache extension."""

from repro.experiments.configs import pattern_history
from repro.predictors import EngineConfig, TargetCacheConfig, simulate
from repro.predictors.target_cache import (
    CascadedTargetCache,
    TaggedTargetCache,
    build_target_cache,
)


def _cascade(entries=16, assoc=4):
    return CascadedTargetCache(TaggedTargetCache(entries=entries, assoc=assoc))


class TestStage1Filter:
    def test_monomorphic_jump_never_promoted(self):
        cascade = _cascade()
        for _ in range(10):
            cascade.update(0x100, 0, 0x400)
        assert cascade.promoted_jumps == 0
        assert cascade.predict(0x100, 0) == 0x400
        assert cascade.stage2.occupancy() == 0

    def test_first_prediction_is_none(self):
        assert _cascade().predict(0x100, 0) is None

    def test_target_change_promotes(self):
        cascade = _cascade()
        cascade.update(0x100, 0, 0x400)
        cascade.update(0x100, 1, 0x800)
        assert cascade.promoted_jumps == 1
        assert cascade.stage2.occupancy() == 1


class TestStage2Prediction:
    def test_promoted_jump_uses_history(self):
        cascade = _cascade()
        # alternate targets under two histories
        cascade.update(0x100, 0, 0x400)
        cascade.update(0x100, 1, 0x800)   # promotion
        cascade.update(0x100, 0, 0x400)
        cascade.update(0x100, 1, 0x800)
        assert cascade.predict(0x100, 0) == 0x400
        assert cascade.predict(0x100, 1) == 0x800

    def test_stage2_miss_falls_back_to_last_target(self):
        cascade = _cascade()
        cascade.update(0x100, 0, 0x400)
        cascade.update(0x100, 1, 0x800)   # promoted; stage 2 knows hist 1
        # an unseen history: stage 2 misses, stage 1 supplies last target
        assert cascade.predict(0x100, 99) == 0x800

    def test_capacity_is_spent_only_on_polymorphic_jumps(self):
        cascade = _cascade(entries=4, assoc=4)
        # 20 monomorphic jumps: no stage-2 pressure at all
        for i in range(20):
            cascade.update(0x1000 + i * 4, 0, 0x4000 + i * 4)
        assert cascade.stage2.occupancy() == 0
        # one polymorphic jump gets the whole table
        for history, target in [(0, 0x40), (1, 0x80), (2, 0xC0), (3, 0x100)]:
            cascade.update(0x2000, history, target)
        for history, target in [(1, 0x80), (2, 0xC0), (3, 0x100)]:
            assert cascade.predict(0x2000, history) == target

    def test_reset(self):
        cascade = _cascade()
        cascade.update(0x100, 0, 0x400)
        cascade.update(0x100, 1, 0x800)
        cascade.reset()
        assert cascade.promoted_jumps == 0
        assert cascade.predict(0x100, 0) is None


class TestFactoryAndIntegration:
    def test_config_builds_cascade(self):
        predictor = build_target_cache(TargetCacheConfig(kind="cascaded"))
        assert isinstance(predictor, CascadedTargetCache)

    def test_cascade_beats_equal_capacity_tagged_on_gcc(self, gcc_trace):
        """The extension's claim: filtering monomorphic jumps out of the
        tagged table buys accuracy at equal capacity."""
        def rate(kind):
            config = EngineConfig(
                target_cache=TargetCacheConfig(kind=kind, entries=128,
                                               assoc=4),
                history=pattern_history(9),
            )
            return simulate(gcc_trace, config).indirect_mispred_rate

        assert rate("cascaded") <= rate("tagged") + 0.005

    def test_counters(self):
        cascade = _cascade()
        cascade.update(0x100, 0, 0x400)
        cascade.predict(0x100, 0)
        assert cascade.stage1_predictions == 1
        cascade.update(0x100, 1, 0x800)
        cascade.update(0x100, 1, 0x800)
        cascade.predict(0x100, 1)
        assert cascade.stage2_predictions == 1
