"""Tests for ExperimentTable formatting and the configs helpers."""


import pytest

from repro.experiments.common import ExperimentTable, default_trace_length
from repro.experiments.configs import (
    PATH_SCHEME_LABELS,
    path_history,
    path_scheme_history,
    pattern_history,
    per_address_history,
    tagged_engine,
    tagless_engine,
)
from repro.predictors import HistorySource
from repro.predictors.history import PathFilter
from repro.predictors.target_cache import TaggedIndexing


class TestExperimentTable:
    def _table(self, **kwargs):
        return ExperimentTable(
            experiment_id="T",
            title="demo",
            columns=["a", "b"],
            rows=[("row1", [0.5, 0.25]), ("row2", [1.0, 0.0])],
            **kwargs,
        )

    def test_percent_format(self):
        text = self._table().format()
        assert "50.00%" in text
        assert "25.00%" in text

    def test_count_format(self):
        table = ExperimentTable(
            experiment_id="T", title="demo", columns=["n"],
            rows=[("r", [12345.0])], value_format="count",
        )
        assert "12,345" in table.format()

    def test_float_format(self):
        table = ExperimentTable(
            experiment_id="T", title="demo", columns=["x"],
            rows=[("r", [1.5])], value_format="float",
        )
        assert "1.500" in table.format()

    def test_mixed_column_formats(self):
        table = ExperimentTable(
            experiment_id="T", title="demo", columns=["n", "rate"],
            rows=[("r", [100.0, 0.5])],
            column_formats=["count", "percent"],
        )
        text = table.format()
        assert "100" in text and "50.00%" in text

    def test_nan_renders_as_dash(self):
        table = ExperimentTable(
            experiment_id="T", title="demo", columns=["x"],
            rows=[("r", [float("nan")])],
        )
        assert "-" in table.format()

    def test_cell_lookup(self):
        table = self._table()
        assert table.cell("row1", "b") == 0.25
        with pytest.raises(ValueError):
            table.cell("row1", "missing")
        with pytest.raises(KeyError):
            table.cell("missing", "a")

    def test_notes_rendered(self):
        table = self._table(notes="hello note")
        assert "hello note" in table.format()


class TestDefaults:
    def test_default_trace_length_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LENGTH", "12345")
        assert default_trace_length() == 12345

    def test_default_trace_length_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_LENGTH", raising=False)
        assert default_trace_length() == 400000


class TestConfigHelpers:
    def test_pattern_history(self):
        history = pattern_history(12)
        assert history.source is HistorySource.PATTERN
        assert history.bits == 12

    def test_path_history(self):
        history = path_history(PathFilter.BRANCH, bits=9, bits_per_target=2,
                               address_bit=3)
        assert history.source is HistorySource.PATH_GLOBAL
        assert history.path_filter is PathFilter.BRANCH
        assert history.bits_per_target == 2
        assert history.address_bit == 3

    def test_per_address_history(self):
        history = per_address_history()
        assert history.source is HistorySource.PATH_PER_ADDRESS

    def test_path_scheme_labels_cover_the_paper(self):
        assert set(PATH_SCHEME_LABELS) == {"per-addr", "branch", "control",
                                           "ind jmp", "call/ret"}
        for label in PATH_SCHEME_LABELS:
            history = path_scheme_history(label)
            assert history.bits == 9

    def test_unknown_scheme_label_rejected(self):
        with pytest.raises(KeyError):
            path_scheme_history("bogus")

    def test_tagless_engine_defaults_512_entries(self):
        config = tagless_engine()
        assert config.target_cache.kind == "tagless"
        assert 2 ** config.target_cache.history_bits == 512

    def test_tagged_engine_shape(self):
        config = tagged_engine(assoc=8, indexing=TaggedIndexing.ADDRESS,
                               history_bits=16)
        assert config.target_cache.assoc == 8
        assert config.target_cache.indexing is TaggedIndexing.ADDRESS
        assert config.history.bits == 16

    def test_history_descriptions(self):
        assert pattern_history(9).describe() == "pattern(9)"
        assert "path-branch" in path_history(PathFilter.BRANCH).describe()
        assert "per-addr" in per_address_history().describe()
