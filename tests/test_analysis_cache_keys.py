"""The cache-key checker: field types, token drift, module coverage."""

import dataclasses
import textwrap
from dataclasses import field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.base import Project, SourceFile
from repro.analysis.cache_keys import (
    CacheKeyChecker,
    RegistryChecker,
    check_config_fields,
    check_module_coverage,
    check_modules_exist,
    check_spec_completeness,
    check_token_completeness,
    import_closure,
    internal_imports,
)
from repro.pipeline import MachineConfig
from repro.predictors import EngineConfig, PredictorTraits, TargetCacheConfig
from repro.runner.keys import config_token


def _rules(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# Field-type validation
# ----------------------------------------------------------------------
class TestConfigFields:
    def test_shipped_configs_are_tokenisable(self):
        assert check_config_fields(EngineConfig) == []
        assert check_config_fields(MachineConfig) == []

    def test_set_field_is_flagged(self):
        # The seeded-bad fixture: a config gains a set-typed field, which
        # config_token cannot render canonically (iteration order).
        bad = dataclasses.make_dataclass(
            "BadConfig", [("excluded_pcs", Set[int], field(default=None))]
        )
        findings = check_config_fields(bad)
        assert _rules(findings) == ["cachekey-field-type"]
        assert "excluded_pcs" in findings[0].message

    def test_plain_class_field_is_flagged(self):
        class Opaque:
            pass

        bad = dataclasses.make_dataclass(
            "BadConfig", [("thing", Opaque, field(default=None))]
        )
        assert _rules(check_config_fields(bad)) == ["cachekey-field-type"]

    def test_nested_dataclass_fields_are_checked_transitively(self):
        inner = dataclasses.make_dataclass(
            "Inner", [("weights", Dict[object, int], field(default=None))]
        )
        outer = dataclasses.make_dataclass(
            "Outer", [("inner", inner, field(default=None))]
        )
        findings = check_config_fields(outer)
        assert "cachekey-field-type" in _rules(findings)

    def test_optional_and_tuple_fields_are_accepted(self):
        ok = dataclasses.make_dataclass(
            "OkConfig",
            [
                ("depth", Optional[int], field(default=None)),
                ("lengths", Tuple[int, ...], field(default=())),
                ("names", List[str], field(default_factory=list)),
            ],
        )
        assert check_config_fields(ok) == []

    def test_pep604_union_is_accepted(self):
        ok = dataclasses.make_dataclass(
            "Ok604", [("depth", "int | None", field(default=None))]
        )
        assert check_config_fields(ok) == []


# ----------------------------------------------------------------------
# Token completeness
# ----------------------------------------------------------------------
class TestTokenCompleteness:
    def test_shipped_token_covers_every_field(self):
        config = EngineConfig(target_cache=TargetCacheConfig())
        assert check_token_completeness(config, config_token) == []
        assert check_token_completeness(MachineConfig(), config_token) == []

    def test_dropped_field_is_detected(self):
        # A "config_token" that forgets one field must be caught.
        def lossy_token(value):
            token = config_token(value)
            if isinstance(token, list) and isinstance(token[1], dict):
                token[1].pop("btb_sets", None)
            return token

        config = EngineConfig()
        findings = check_token_completeness(config, lossy_token)
        assert _rules(findings) == ["cachekey-token-drift"]
        assert "btb_sets" in findings[0].message

    def test_token_failure_is_reported_not_raised(self):
        def broken_token(value):
            raise TypeError("cannot tokenise")

        findings = check_token_completeness(EngineConfig(), broken_token)
        assert _rules(findings) == ["cachekey-token-drift"]


# ----------------------------------------------------------------------
# Module coverage
# ----------------------------------------------------------------------
def _project(files):
    return Project(root=None, files=[
        SourceFile.from_text(relpath, textwrap.dedent(text))
        for relpath, text in files.items()
    ])


class TestModuleCoverage:
    def test_internal_imports_sees_both_forms(self):
        project = _project({
            "predictors/engine.py": """
                import repro.guest.isa
                from repro.predictors.history import PatternHistoryRegister
                from repro.trace import trace
            """,
            "predictors/history.py": "x = 1\n",
            "guest/isa.py": "x = 1\n",
            "trace/trace.py": "x = 1\n",
            "trace/__init__.py": "",
        })
        imported = internal_imports(project, "repro.predictors.engine")
        assert imported == {
            "repro.guest.isa",
            "repro.predictors.history",
            "repro.trace.trace",
        }

    def test_closure_is_transitive(self):
        project = _project({
            "predictors/engine.py": "from repro.predictors import btb\n",
            "predictors/btb.py": "from repro.predictors import ras\n",
            "predictors/ras.py": "x = 1\n",
            "predictors/__init__.py": "",
        })
        closure = import_closure(project, ["repro.predictors.engine"])
        assert "repro.predictors.ras" in closure

    def test_uncovered_kernel_module_is_flagged(self):
        project = _project({
            "predictors/engine.py": "from repro.predictors import shiny\n",
            "predictors/shiny.py": "x = 1\n",
            "predictors/__init__.py": "",
        })
        findings = check_module_coverage(
            project, ["repro.predictors.engine"],
            covered=("repro.guest.isa",), anchor=("runner/keys.py", 1),
        )
        assert "cachekey-module-uncovered" in _rules(findings)
        assert any("shiny" in f.message for f in findings)

    def test_package_entry_covers_submodules(self):
        project = _project({
            "predictors/engine.py": "from repro.predictors import shiny\n",
            "predictors/shiny.py": "x = 1\n",
            "predictors/__init__.py": "",
        })
        findings = check_module_coverage(
            project, ["repro.predictors.engine"],
            covered=("repro.predictors",), anchor=("runner/keys.py", 1),
        )
        assert findings == []

    def test_streams_is_a_prediction_root(self):
        # The stream kernel must sit inside the fingerprinted closure: an
        # edit to it changes results-producing code, so it has to
        # invalidate cached results exactly like an engine edit.
        from repro.analysis.cache_keys import PREDICTION_ROOTS
        from repro.runner.keys import _ENGINE_CODE_MODULES

        assert "repro.predictors.streams" in PREDICTION_ROOTS
        project = Project.load()
        closure = import_closure(project, PREDICTION_ROOTS)
        assert "repro.predictors.streams" in closure
        # and the fingerprint list actually covers it (package entry)
        anchor = ("runner/keys.py", 1)
        assert check_module_coverage(
            project, ("repro.predictors.streams",),
            covered=tuple(_ENGINE_CODE_MODULES), anchor=anchor,
        ) == []

    def test_streams_importing_uncovered_module_is_flagged(self):
        # Known-bad fixture: a streams.py that pulls a helper from outside
        # every fingerprinted package — the checker must flag it, because
        # edits to that helper would not invalidate cached results.
        project = _project({
            "predictors/streams.py": """
                from repro.predictors.fastmath import suffix_mask
            """,
            "predictors/fastmath.py": "def suffix_mask(w): return (1 << w) - 1\n",
            "predictors/__init__.py": "",
        })
        findings = check_module_coverage(
            project, ["repro.predictors.streams"],
            covered=("repro.predictors.engine",),
            anchor=("runner/keys.py", 1),
        )
        assert "cachekey-module-uncovered" in _rules(findings)
        assert any("fastmath" in f.message for f in findings)

    def test_missing_fingerprint_module_is_flagged(self):
        findings = check_modules_exist(
            ("repro.predictors", "repro.no_such_module"),
            anchor=("runner/keys.py", 1),
        )
        assert _rules(findings) == ["cachekey-module-missing"]

    def test_shipped_tree_coverage_holds(self):
        findings = CacheKeyChecker().run(Project.load())
        assert findings == [], [f.format() for f in findings]


# ----------------------------------------------------------------------
# Spec-render completeness
# ----------------------------------------------------------------------
class TestSpecCompleteness:
    def test_shipped_configs_render_completely(self):
        config = EngineConfig(target_cache=TargetCacheConfig())
        assert check_spec_completeness(config) == []

    def test_unrenderable_field_is_flagged(self):
        bad = dataclasses.make_dataclass(
            "BadSpecConfig", [("excluded", Set[int], field(default=None))]
        )
        findings = check_spec_completeness(bad(excluded={1}))
        assert _rules(findings) == ["cachekey-spec-drift"]
        assert "to_spec failed" in findings[0].message

    def test_dropped_field_is_flagged(self, monkeypatch):
        # Known-bad fixture: a codec that silently drops one field; the
        # cache key built from its output would ignore btb_sets edits.
        import repro.predictors.spec as spec_codec

        real = spec_codec.to_spec

        def lossy(value):
            rendered = real(value)
            rendered.pop("btb_sets", None)
            return rendered

        monkeypatch.setattr(spec_codec, "to_spec", lossy)
        findings = check_spec_completeness(EngineConfig())
        assert _rules(findings) == ["cachekey-spec-drift"]
        assert "btb_sets" in findings[0].message

    def test_nested_configs_are_checked(self, monkeypatch):
        import repro.predictors.spec as spec_codec

        real = spec_codec.to_spec

        def lossy(value):
            rendered = real(value)
            if isinstance(value, TargetCacheConfig):
                rendered.pop("tag_bits", None)
            return rendered

        monkeypatch.setattr(spec_codec, "to_spec", lossy)
        findings = check_spec_completeness(
            EngineConfig(target_cache=TargetCacheConfig())
        )
        assert _rules(findings) == ["cachekey-spec-drift"]
        assert "tag_bits" in findings[0].message


# ----------------------------------------------------------------------
# Predictor-registry discipline
# ----------------------------------------------------------------------
class TestRegistryChecker:
    def test_shipped_tree_is_clean(self):
        findings = RegistryChecker().run(Project.load())
        assert findings == [], [f.format() for f in findings]

    def _stub_predictor(self):
        from repro.predictors.target_cache.base import TargetPredictor

        class Stub(TargetPredictor):
            def predict(self, pc, history):
                return None

            def update(self, pc, history, target):
                pass

            def reset(self):
                pass

        return Stub

    def test_unregistered_predictor_is_flagged(self):
        import gc

        stub = self._stub_predictor()
        stub.__module__ = "repro._lint_test_stub"
        try:
            findings = RegistryChecker().run(Project.load())
            assert "registry-unregistered-predictor" in _rules(findings)
            assert any("_lint_test_stub" in f.message for f in findings)
        finally:
            # drop the class so later shipped-tree assertions stay clean
            del stub
            gc.collect()

    def test_missing_spec_examples_is_flagged(self):
        from repro.predictors import registry

        stub = self._stub_predictor()
        registry.register(
            "_lint_no_examples",
            factory=lambda config: stub(),
            traits=PredictorTraits(description="test stub"),
            provides=(stub,),
            spec_examples=(),
        )
        try:
            findings = RegistryChecker().run(Project.load())
            assert "registry-missing-spec-examples" in _rules(findings)
        finally:
            registry.unregister("_lint_no_examples")

    def test_mismatched_example_kind_is_flagged(self):
        from repro.predictors import registry

        stub = self._stub_predictor()
        registry.register(
            "_lint_bad_example",
            factory=lambda config: stub(),
            traits=PredictorTraits(description="test stub"),
            provides=(stub,),
            spec_examples=(TargetCacheConfig(kind="tagless"),),
        )
        try:
            findings = RegistryChecker().run(Project.load())
            assert "registry-spec-roundtrip" in _rules(findings)
        finally:
            registry.unregister("_lint_bad_example")

    def test_bare_label_is_flagged(self):
        from repro.predictors import registry

        stub = self._stub_predictor()
        registry.register(
            "_lint_bare_label",
            factory=lambda config: stub(),
            traits=PredictorTraits(description="test stub"),
            provides=(stub,),
            label=lambda config: "_lint_bare_label",
            spec_examples=(TargetCacheConfig(kind="_lint_bare_label"),),
        )
        try:
            findings = RegistryChecker().run(Project.load())
            assert "registry-bare-label" in _rules(findings)
        finally:
            registry.unregister("_lint_bare_label")
