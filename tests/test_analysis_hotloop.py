"""The hot-loop checker: kernel hygiene rules on synthetic hot paths."""

import textwrap

from repro.analysis.base import Project, SourceFile
from repro.analysis.hotloop import ENUM_PROPERTIES, HotLoopChecker


def _check(code, entries):
    source = SourceFile.from_text("predictors/engine.py", textwrap.dedent(code))
    return HotLoopChecker().check_file(source, entries)


class TestEnumProperty:
    def test_property_access_in_hot_body_is_flagged(self):
        code = """
        class Engine:
            def process_branch(self, kind):
                if kind.is_indirect:
                    return 1
                return 0
        """
        findings = _check(code, [("Engine.process_branch", True)])
        assert [f.rule for f in findings] == ["hotloop-enum-property"]

    def test_property_access_outside_hot_paths_is_ignored(self):
        code = """
        def classify(kind):
            return kind.is_indirect
        """
        assert _check(code, [("other_function", True)]) == []

    def test_property_in_loop_of_driver_is_flagged(self):
        code = """
        def simulate(records):
            for record in records:
                if record.kind.is_call:
                    pass
        """
        findings = _check(code, [("simulate", False)])
        assert [f.rule for f in findings] == ["hotloop-enum-property"]

    def test_property_in_driver_setup_is_allowed(self):
        code = """
        def simulate(records):
            calls = frozenset(k for k in KINDS if k.is_call)
            for record in records:
                pass
        """
        # setup line is outside the loop body, so not hot
        findings = _check(code, [("simulate", False)])
        assert findings == []

    def test_enum_property_names_match_the_isa(self):
        # The rule list must track BranchKind's actual properties.
        from repro.guest.isa import BranchKind

        actual = {
            name
            for name, value in vars(BranchKind).items()
            if isinstance(value, property)
        }
        assert ENUM_PROPERTIES == actual


class TestConstruct:
    def test_camelcase_construction_in_loop_is_flagged(self):
        code = """
        def simulate(records):
            for record in records:
                stats = PredictionStats()
        """
        findings = _check(code, [("simulate", False)])
        assert [f.rule for f in findings] == ["hotloop-construct"]

    def test_construction_before_loop_is_allowed(self):
        code = """
        def simulate(records, config):
            engine = FetchEngine(config)
            for record in records:
                engine.step(record)
        """
        assert _check(code, [("simulate", False)]) == []

    def test_snake_case_calls_are_allowed(self):
        code = """
        class Engine:
            def process_branch(self, pc):
                return self.btb.lookup(pc)
        """
        assert _check(code, [("Engine.process_branch", True)]) == []

    def test_upper_constant_call_is_allowed(self):
        code = """
        def simulate(records):
            for record in records:
                x = KIND_TABLE(record)
        """
        assert _check(code, [("simulate", False)]) == []


class TestAttrChain:
    def test_repeated_chain_in_loop_is_flagged(self):
        code = """
        def simulate(engine, records):
            for record in records:
                if engine.stats.total > 0:
                    engine.stats.total += 1
        """
        findings = _check(code, [("simulate", False)])
        assert [f.rule for f in findings] == ["hotloop-attr-chain"]
        assert "engine.stats.total" in findings[0].message

    def test_single_chain_read_is_allowed(self):
        code = """
        def simulate(engine, records):
            for record in records:
                engine.stats.record(record)
        """
        assert _check(code, [("simulate", False)]) == []

    def test_single_step_attribute_is_not_a_chain(self):
        code = """
        def simulate(counter, records):
            for record in records:
                counter.executed += 1
                counter.executed += 1
        """
        assert _check(code, [("simulate", False)]) == []

    def test_straight_line_hot_body_has_no_chain_rule(self):
        # process_branch-style code reads the same chain on mutually
        # exclusive branches; that is not a repeated runtime lookup.
        code = """
        class Engine:
            def process_branch(self, kind, taken):
                if taken:
                    self.ras.pop()
                else:
                    self.ras.pop()
        """
        assert _check(code, [("Engine.process_branch", True)]) == []


class TestShippedKernel:
    def test_shipped_hot_paths_are_clean(self):
        project = Project.load()
        findings = HotLoopChecker().run(project)
        assert findings == [], [f.format() for f in findings]

    def test_default_hot_paths_exist_in_the_tree(self):
        from repro.analysis.astutil import functions_with_qualnames
        from repro.analysis.hotloop import HOT_PATHS

        project = Project.load()
        for relpath, qualname, _ in HOT_PATHS:
            source = project.file(relpath)
            assert source is not None, relpath
            names = {q for q, _ in functions_with_qualnames(source.tree)}
            assert qualname in names, (relpath, qualname)
