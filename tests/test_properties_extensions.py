"""Property-based tests for the extension predictors and the metrics."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.compare import orderings_agree
from repro.metrics.stats import bootstrap_ci
from repro.predictors.target_cache.cascaded import CascadedTargetCache
from repro.predictors.target_cache.ittage import ITTageLite, fold_history
from repro.predictors.target_cache.tagged import TaggedTargetCache

word_addresses = st.integers(min_value=0, max_value=1 << 20).map(lambda w: w * 4)
histories = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestFoldHistoryProperties:
    @given(histories, st.integers(1, 48), st.integers(1, 16))
    def test_in_range(self, history, length, bits):
        assert 0 <= fold_history(history, length, bits) < (1 << bits)

    @given(histories, st.integers(1, 48), st.integers(1, 16))
    def test_deterministic(self, history, length, bits):
        assert fold_history(history, length, bits) == fold_history(
            history, length, bits
        )

    @given(histories, histories, st.integers(1, 16))
    def test_ignores_bits_beyond_length(self, history, junk, bits):
        length = 8
        mask = (1 << length) - 1
        low = history & mask
        with_junk = low | (junk << length)
        assert fold_history(low, length, bits) == fold_history(
            with_junk, length, bits
        )


class TestCascadeProperties:
    @given(st.lists(st.tuples(word_addresses, histories, word_addresses),
                    min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_prediction_is_some_taught_target_or_none(self, ops):
        cascade = CascadedTargetCache(TaggedTargetCache(entries=16, assoc=2))
        taught = set()
        for pc, history, target in ops:
            guess = cascade.predict(pc, history)
            assert guess is None or guess in taught
            cascade.update(pc, history, target)
            taught.add(target)

    @given(st.lists(st.tuples(word_addresses, word_addresses), min_size=1,
                    max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_promotion_only_on_target_change(self, ops):
        cascade = CascadedTargetCache(TaggedTargetCache(entries=16, assoc=2))
        changes = set()
        last = {}
        for pc, target in ops:
            if pc in last and last[pc] != target:
                changes.add(pc)
            cascade.update(pc, 0, target)
            last[pc] = target
        assert cascade.promoted_jumps == len(changes)

    @given(st.lists(st.tuples(word_addresses, histories, word_addresses),
                    max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_monomorphic_never_touches_stage2(self, ops):
        cascade = CascadedTargetCache(TaggedTargetCache(entries=16, assoc=2))
        for pc, history, _target in ops:
            cascade.update(pc, history, pc + 4)  # one target per pc
        assert cascade.stage2.occupancy() == 0


class TestITTageProperties:
    @given(st.lists(st.tuples(word_addresses, histories, word_addresses),
                    min_size=1, max_size=150))
    @settings(max_examples=25, deadline=None)
    def test_never_invents_targets(self, ops):
        predictor = ITTageLite(table_bits=4)
        taught = set()
        for pc, history, target in ops:
            guess = predictor.predict(pc, history)
            assert guess is None or guess in taught
            predictor.update(pc, history, target)
            taught.add(target)

    @given(st.lists(st.tuples(word_addresses, histories, word_addresses),
                    min_size=1, max_size=150))
    @settings(max_examples=25, deadline=None)
    def test_component_capacity_bounded(self, ops):
        predictor = ITTageLite(table_bits=4)
        for pc, history, target in ops:
            predictor.update(pc, history, target)
        for table in predictor._tables:
            assert len(table) <= 16

    @given(word_addresses, histories, word_addresses)
    def test_repeated_training_converges(self, pc, history, target):
        predictor = ITTageLite()
        for _ in range(4):
            predictor.update(pc, history, target)
        assert predictor.predict(pc, history) == target


class TestMetricsProperties:
    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=30),
           st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_bootstrap_interval_within_sample_range(self, samples, seed):
        ci = bootstrap_ci(samples, seed=seed, n_resamples=300)
        assert min(samples) - 1e-9 <= ci.low <= ci.high <= max(samples) + 1e-9
        assert ci.low <= ci.estimate + 1e-9
        assert ci.estimate <= ci.high + 1e-9

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=12, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_orderings_agree_is_reflexive(self, values):
        assert orderings_agree(values, values)

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=12, unique=True),
           st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_orderings_agree_under_monotone_transform(self, values, seed):
        transformed = [v * 3.0 + 0.5 for v in values]
        assert orderings_agree(values, transformed)
