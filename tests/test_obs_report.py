"""``repro report``: ledger summaries and the bench comparison gate."""

import json

import pytest

from repro.cli import main
from repro.obs import compare_bench, format_compare, format_summary, read_ledger, summarize


def _ledger_lines(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


_SAMPLE = [
    {"t": 1.0, "pid": 100, "kind": "run", "name": "start", "role": "parent",
     "schema": 1},
    {"t": 1.0, "pid": 200, "kind": "run", "name": "start", "role": "worker",
     "schema": 1},
    {"t": 1.0, "pid": 201, "kind": "run", "name": "start", "role": "worker",
     "schema": 1},
    {"t": 1.1, "pid": 100, "kind": "gauge", "name": "pool.jobs", "value": 2},
    {"t": 1.2, "pid": 100, "kind": "event", "name": "pool.chunk",
     "meta": {"benchmark": "perl", "cells": 2}},
    {"t": 1.3, "pid": 200, "kind": "span", "name": "cell", "dur": 0.3,
     "meta": {"benchmark": "perl", "kernel": "stream"}},
    {"t": 1.4, "pid": 201, "kind": "span", "name": "cell", "dur": 0.5,
     "meta": {"benchmark": "gcc", "kernel": "stream"}},
    {"t": 1.5, "pid": 100, "kind": "span", "name": "pool.run", "dur": 1.0},
    {"t": 1.6, "pid": 100, "kind": "counter",
     "name": "runner.cell_cache.hit", "value": 6},
    {"t": 1.6, "pid": 100, "kind": "counter",
     "name": "runner.cell_cache.miss", "value": 2},
]


class TestReadLedger:
    def test_round_trips_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _ledger_lines(path, _SAMPLE)
        assert read_ledger(path) == _SAMPLE

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind":"span"}\nnot json\n')
        with pytest.raises(ValueError, match="2: malformed"):
            read_ledger(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("[1,2,3]\n")
        with pytest.raises(ValueError, match="not an object"):
            read_ledger(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('\n{"kind":"event","name":"x"}\n\n')
        assert len(read_ledger(path)) == 1


class TestSummarize:
    def test_pids_phases_cache_and_pool(self):
        summary = summarize(_SAMPLE)
        assert summary["events"] == len(_SAMPLE)
        assert summary["pids"] == {"parent": [100], "worker": [200, 201]}
        phases = {p["name"]: p for p in summary["phases"]}
        assert phases["cell"]["count"] == 2
        assert phases["cell"]["total_s"] == pytest.approx(0.8)
        assert phases["pool.run"]["total_s"] == pytest.approx(1.0)
        # phases sorted by total, descending
        assert summary["phases"][0]["name"] == "pool.run"
        cache = summary["cache"]
        assert cache["hits"] == 6 and cache["misses"] == 2
        assert cache["hit_rate"] == pytest.approx(0.75)
        pool = summary["pool"]
        assert pool["jobs"] == 2
        assert pool["busy_s"] == pytest.approx(0.8)
        assert pool["utilization"] == pytest.approx(0.8 / (1.0 * 2))

    def test_slowest_cells_ranked_and_limited(self):
        summary = summarize(_SAMPLE, top=1)
        [slowest] = summary["cells"]["slowest"]
        assert slowest["dur_s"] == pytest.approx(0.5)
        assert slowest["benchmark"] == "gcc"

    def test_no_pool_run_means_no_pool_section(self):
        summary = summarize([r for r in _SAMPLE if r.get("name") != "pool.run"])
        assert summary["pool"] is None

    def test_no_cache_counters_means_no_cache_section(self):
        summary = summarize([r for r in _SAMPLE if r["kind"] != "counter"])
        assert summary["cache"] is None

    def test_file_level_cache_counters_are_the_fallback(self):
        records = [
            {"pid": 1, "kind": "counter", "name": "result_cache.load.hit",
             "value": 3},
            {"pid": 1, "kind": "counter", "name": "result_cache.load.miss",
             "value": 1},
        ]
        cache = summarize(records)["cache"]
        assert cache["hits"] == 3
        assert cache["source"] == "result_cache.load"

    def test_format_summary_renders_the_key_lines(self):
        text = format_summary(summarize(_SAMPLE))
        assert "2 worker process(es)" in text
        assert "pool.run" in text
        assert "75.0% hit rate" in text
        assert "utilization" in text


def _bench_payload(per_cell=0.002, build=0.05, warm=0.0002):
    return {
        "schema": 1,
        "reference": {"per_cell_s": per_cell},
        "stream_kernel": {"build_s": build, "warm_per_cell_s": warm},
        "speedup": {"per_cell": per_cell / warm,
                    "including_build": 1.5},
    }


class TestCompareBench:
    def test_no_regression_when_equal(self):
        result = compare_bench(_bench_payload(), _bench_payload())
        assert not result["regressed"]
        assert all(not m["regressed"] for m in result["metrics"])

    def test_flags_a_metric_beyond_threshold(self):
        result = compare_bench(_bench_payload(),
                               _bench_payload(per_cell=0.004),
                               threshold_pct=20.0)
        assert result["regressed"]
        regressed = {m["name"] for m in result["metrics"] if m["regressed"]}
        assert regressed == {"reference.per_cell_s"}
        [metric] = [m for m in result["metrics"]
                    if m["name"] == "reference.per_cell_s"]
        assert metric["change_pct"] == pytest.approx(100.0)

    def test_improvement_never_regresses(self):
        result = compare_bench(_bench_payload(),
                               _bench_payload(per_cell=0.0001))
        assert not result["regressed"]

    def test_threshold_is_respected(self):
        old, new = _bench_payload(), _bench_payload(per_cell=0.0025)
        assert compare_bench(old, new, threshold_pct=20.0)["regressed"]
        assert not compare_bench(old, new, threshold_pct=30.0)["regressed"]

    def test_speedups_are_info_only(self):
        old = _bench_payload()
        new = _bench_payload()
        new["speedup"]["per_cell"] = 0.01  # catastrophic ratio, same timings
        result = compare_bench(old, new)
        assert not result["regressed"]
        assert any(m["name"] == "speedup.per_cell" for m in result["info"])

    def test_missing_metrics_are_skipped(self):
        result = compare_bench({"schema": 1}, _bench_payload())
        assert result["metrics"] == []
        assert not result["regressed"]

    def test_tier_metrics_gate_the_vector_backend(self):
        def with_tiers(vector=0.0001):
            payload = _bench_payload()
            payload["tiers"] = {
                "engine_per_cell_s": 0.04,
                "streams_per_cell_s": 0.0005,
                "vector_per_cell_s": vector,
                "speedup": {"vector_vs_streams": 0.0005 / vector,
                            "vector_vs_engine": 0.04 / vector},
            }
            return payload

        result = compare_bench(with_tiers(), with_tiers(vector=0.0002),
                               threshold_pct=20.0)
        assert result["regressed"]
        regressed = {m["name"] for m in result["metrics"] if m["regressed"]}
        assert regressed == {"tiers.vector_per_cell_s"}
        assert any(m["name"] == "tiers.speedup.vector_vs_streams"
                   for m in result["info"])

    def test_pre_tier_payloads_stay_comparable(self):
        # old payload predates the per-tier breakdown: its absence is a
        # skip, never a regression
        old = _bench_payload()
        new = _bench_payload()
        new["tiers"] = {"engine_per_cell_s": 0.04,
                        "streams_per_cell_s": 0.0005,
                        "vector_per_cell_s": 0.0001}
        result = compare_bench(old, new)
        assert not result["regressed"]
        assert not any(m["name"].startswith("tiers.")
                       for m in result["metrics"])

    def test_format_compare_marks_regressions(self):
        result = compare_bench(_bench_payload(),
                               _bench_payload(per_cell=0.004))
        text = format_compare(result)
        assert "REGRESSED" in text
        assert "regression detected" in text


class TestReportCommand:
    def test_summarises_a_ledger(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _ledger_lines(path, _SAMPLE)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "worker process(es)" in out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _ledger_lines(path, _SAMPLE)
        assert main(["report", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pids"]["worker"] == [200, 201]

    def test_missing_ledger_is_an_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_ledger_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        path.write_text("garbage\n")
        assert main(["report", str(path)]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_compare_exits_nonzero_on_regression(self, tmp_path, capsys):
        old = tmp_path / "OLD.json"
        new = tmp_path / "NEW.json"
        old.write_text(json.dumps(_bench_payload()))
        new.write_text(json.dumps(_bench_payload(per_cell=0.004)))
        assert main(["report", "--compare", str(old), str(new)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_passes_when_clean(self, tmp_path, capsys):
        old = tmp_path / "OLD.json"
        new = tmp_path / "NEW.json"
        old.write_text(json.dumps(_bench_payload()))
        new.write_text(json.dumps(_bench_payload()))
        assert main(["report", "--compare", str(old), str(new)]) == 0

    def test_compare_threshold_flag(self, tmp_path):
        old = tmp_path / "OLD.json"
        new = tmp_path / "NEW.json"
        old.write_text(json.dumps(_bench_payload()))
        new.write_text(json.dumps(_bench_payload(per_cell=0.0025)))
        assert main(["report", "--compare", str(old), str(new),
                     "--threshold", "20"]) == 1
        assert main(["report", "--compare", str(old), str(new),
                     "--threshold", "30"]) == 0

    def test_compare_soft_fails_without_a_previous_payload(self, tmp_path,
                                                           capsys):
        new = tmp_path / "NEW.json"
        new.write_text(json.dumps(_bench_payload()))
        assert main(["report", "--compare", str(tmp_path / "none.json"),
                     str(new)]) == 0
        assert "skipping comparison" in capsys.readouterr().err

    def test_compare_requires_the_new_payload(self, tmp_path, capsys):
        old = tmp_path / "OLD.json"
        old.write_text(json.dumps(_bench_payload()))
        assert main(["report", "--compare", str(old),
                     str(tmp_path / "missing.json")]) == 2


class TestPayloadDeclaredMetrics:
    """``BENCH_serve.json`` declares its own gate/info metric lists; the
    comparator must honour them so one CLI command gates every flavour."""

    def _serve_payload(self, p50=0.020, p95=0.050, rps=200.0):
        return {
            "schema": 1,
            "bench": "serve",
            "latency": {"p50_s": p50, "p95_s": p95, "p99_s": p95 * 1.2},
            "throughput": {"requests_per_s": rps},
            "gate_metrics": ["latency.p50_s", "latency.p95_s",
                             "latency.p99_s"],
            "info_metrics": ["throughput.requests_per_s"],
        }

    def test_declared_gate_metrics_gate(self):
        result = compare_bench(self._serve_payload(),
                               self._serve_payload(p50=0.030),
                               threshold_pct=20.0)
        assert result["regressed"]
        names = {metric["name"] for metric in result["metrics"]}
        assert "latency.p50_s" in names
        # Sweep-bench defaults are not consulted for a declaring payload.
        assert "reference.per_cell_s" not in names

    def test_declared_info_metrics_never_gate(self):
        result = compare_bench(self._serve_payload(rps=1000.0),
                               self._serve_payload(rps=10.0),
                               threshold_pct=20.0)
        assert not result["regressed"]
        info_names = {metric["name"] for metric in result["info"]}
        assert "throughput.requests_per_s" in info_names

    def test_within_threshold_passes(self):
        result = compare_bench(self._serve_payload(),
                               self._serve_payload(p50=0.021),
                               threshold_pct=20.0)
        assert not result["regressed"]

    def test_undeclared_payloads_keep_sweep_defaults(self):
        result = compare_bench(_bench_payload(), _bench_payload())
        names = {metric["name"] for metric in result["metrics"]}
        assert "reference.per_cell_s" in names
