"""The sweep service: scheduler savings, HTTP endpoints, multi-instance splits.

The service's contract has two halves.  *Performance*: concurrent
identical cells cost one simulation (in-flight dedup), cached cells cost
zero (result-cache short-circuit), and two instances sharing a cache
directory split a sweep between them (claim files).  *Correctness*: no
matter which savings path a cell takes, the numbers are bit-identical to
a direct ``run_cells`` sweep — scheduling must be invisible in results.
"""

import asyncio
import json

import pytest

from repro.predictors import EngineConfig, TargetCacheConfig
from repro.runner import ResultCache, SweepCell, SweepPool, run_cells
from repro.service import SweepService
from repro.service.http import ProtocolError
from repro.service.loadgen import (
    ServiceClient,
    build_mix,
    percentile,
    run_load,
    spec_population,
)
from repro.service.scheduler import ShardScheduler
from repro.sweepspec import parse_spec_document

TRACE_LENGTH = 20_000

CONFIGS = [
    EngineConfig(),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless")),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagged", entries=64,
                                                assoc=2)),
]


def make_pool():
    # Thread mode: deterministic, fork-free, and shares the test process.
    return SweepPool(0, trace_length=TRACE_LENGTH)


def assert_identical(a, b):
    assert a.instructions == b.instructions
    assert a.per_kind.keys() == b.per_kind.keys()
    for kind in a.per_kind:
        assert a.counters(kind).executed == b.counters(kind).executed
        assert (a.counters(kind).mispredicted
                == b.counters(kind).mispredicted)


# ----------------------------------------------------------------------
# Scheduler unit behaviour.
# ----------------------------------------------------------------------
class TestShardScheduler:
    def test_results_match_run_cells(self, tmp_path):
        async def go():
            with make_pool() as pool:
                scheduler = ShardScheduler(
                    pool, shards=3,
                    result_cache=ResultCache(tmp_path / "svc"),
                )
                futures = [scheduler.submit("perl", config)
                           for config in CONFIGS]
                stats = await asyncio.gather(*futures)
                await scheduler.close()
                return stats

        via_service = asyncio.run(go())
        direct = run_cells(
            [SweepCell("perl", config) for config in CONFIGS],
            jobs=1, trace_length=TRACE_LENGTH, result_cache=None,
        )
        for a, b in zip(via_service, direct):
            assert_identical(a, b)

    def test_concurrent_identical_cells_share_one_future(self, tmp_path):
        async def go():
            with make_pool() as pool:
                scheduler = ShardScheduler(
                    pool, shards=2,
                    result_cache=ResultCache(tmp_path / "svc"),
                )
                futures = [scheduler.submit("perl", CONFIGS[0])
                           for _ in range(8)]
                assert len({id(f) for f in futures}) == 1
                await asyncio.gather(*futures)
                counters = dict(scheduler.counters)
                await scheduler.close()
                return counters

        counters = asyncio.run(go())
        assert counters["submitted"] == 8
        assert counters["dedup"] == 7
        assert counters["computed"] == 1

    def test_cache_short_circuits_second_round(self, tmp_path):
        cache_dir = tmp_path / "svc"

        async def one_round():
            with make_pool() as pool:
                scheduler = ShardScheduler(
                    pool, shards=2, result_cache=ResultCache(cache_dir)
                )
                await asyncio.gather(*[
                    scheduler.submit("perl", config) for config in CONFIGS
                ])
                counters = dict(scheduler.counters)
                await scheduler.close()
                return counters

        first = asyncio.run(one_round())
        second = asyncio.run(one_round())
        assert first["computed"] == len(CONFIGS)
        assert second["computed"] == 0
        assert second["cache_hit"] == len(CONFIGS)

    def test_idle_shards_steal_queued_cells(self, tmp_path):
        async def go():
            with make_pool() as pool:
                scheduler = ShardScheduler(
                    pool, shards=4,
                    result_cache=ResultCache(tmp_path / "svc"),
                )
                # Submit before the loops can drain anything: whichever
                # shards the cells hash to, four loops contend for them.
                futures = [scheduler.submit("perl", config)
                           for config in CONFIGS]
                await asyncio.gather(*futures)
                counters = dict(scheduler.counters)
                await scheduler.close()
                return counters

        counters = asyncio.run(go())
        assert counters["computed"] == len(CONFIGS)

    def test_without_cache_inflight_future_is_the_memo(self):
        async def go():
            with make_pool() as pool:
                scheduler = ShardScheduler(pool, shards=2, result_cache=None)
                first = scheduler.submit("perl", CONFIGS[0])
                await first
                again = scheduler.submit("perl", CONFIGS[0])
                counters = dict(scheduler.counters)
                await scheduler.close()
                assert again is first
                return counters

        counters = asyncio.run(go())
        assert counters["computed"] == 1
        assert counters["dedup"] == 1

    def test_two_schedulers_share_a_cache_directory(self, tmp_path):
        """Two instances splitting one sweep: claims prevent double work
        and the merged rows are bit-identical to a direct run."""
        cache_dir = tmp_path / "shared"

        async def go():
            with make_pool() as pool_a, make_pool() as pool_b:
                a = ShardScheduler(pool_a, shards=2,
                                   result_cache=ResultCache(cache_dir),
                                   poll_interval_s=0.01)
                b = ShardScheduler(pool_b, shards=2,
                                   result_cache=ResultCache(cache_dir),
                                   poll_interval_s=0.01)
                # Both instances receive the *whole* sweep, as when a
                # load balancer mirrors requests.
                futures = [s.submit("perl", config)
                           for config in CONFIGS for s in (a, b)]
                stats = await asyncio.gather(*futures)
                counters = (dict(a.counters), dict(b.counters))
                await a.close()
                await b.close()
                return stats, counters

        stats, (ca, cb) = asyncio.run(go())
        # Each cell was computed exactly once across both instances.
        assert ca["computed"] + cb["computed"] == len(CONFIGS)
        # Claim losers parked and were served from the shared cache.
        assert (ca["cache_hit"] + cb["cache_hit"]
                + ca["computed"] + cb["computed"]) == 2 * len(CONFIGS)
        direct = run_cells(
            [SweepCell("perl", config) for config in CONFIGS],
            jobs=1, trace_length=TRACE_LENGTH, result_cache=None,
        )
        for i, config in enumerate(CONFIGS):
            assert_identical(stats[2 * i], direct[i])
            assert_identical(stats[2 * i + 1], direct[i])

    def test_stale_claim_is_broken(self, tmp_path):
        """A crashed instance's leftover claim must not wedge the cell."""
        from repro.runner import cell_key

        cache_dir = tmp_path / "svc"
        cache = ResultCache(cache_dir)
        # The dead instance claimed exactly the cell we want to run.
        key = cell_key("perl", CONFIGS[0], TRACE_LENGTH, 1997)
        assert cache.claim(key)

        async def go():
            with make_pool() as pool:
                scheduler = ShardScheduler(
                    pool, shards=1, result_cache=ResultCache(cache_dir),
                    claim_ttl_s=0.0,  # every foreign claim is already stale
                    poll_interval_s=0.01,
                )
                future = scheduler.submit("perl", CONFIGS[0])
                stats = await asyncio.wait_for(future, timeout=60)
                counters = dict(scheduler.counters)
                await scheduler.close()
                return stats, counters

        stats, counters = asyncio.run(go())
        assert stats.instructions == TRACE_LENGTH
        assert counters["computed"] == 1


# ----------------------------------------------------------------------
# The HTTP server, end to end over a real socket.
# ----------------------------------------------------------------------
class TestServerEndToEnd:
    def run_server(self, coro_fn, tmp_path):
        async def main():
            service = SweepService(
                host="127.0.0.1", port=0, jobs=0,
                trace_length=TRACE_LENGTH,
                result_cache=ResultCache(tmp_path / "svc"),
            )
            await service.start()
            client = ServiceClient("127.0.0.1", service.port)
            await client.connect()
            try:
                return await coro_fn(service, client)
            finally:
                await client.close()
                await service.close()

        return asyncio.run(main())

    def test_health_and_stats(self, tmp_path):
        async def scenario(service, client):
            status, health = await client.request("GET", "/healthz")
            assert status == 200 and health["ok"] is True
            status, stats = await client.request("GET", "/stats")
            assert status == 200
            assert stats["pool"]["mode"] == "thread"
            assert stats["scheduler"]["submitted"] == 0
            return True

        assert self.run_server(scenario, tmp_path)

    def test_submit_poll_and_stream(self, tmp_path):
        spec = {
            "benchmarks": ["perl"],
            "cells": [{"preset": "btb-only"},
                      {"preset": "tagless-gshare9", "label": "t"}],
        }

        async def scenario(service, client):
            status, submitted = await client.request("POST", "/sweeps", spec)
            assert status == 202
            assert submitted["cells"] == 2
            # The chunked event stream replays every cell then 'done'.
            status, events = await client.request(
                "GET", submitted["links"]["events"]
            )
            assert status == 200
            assert events[-1]["event"] == "done"
            assert events[-1]["status"] == "done"
            assert [e["event"] for e in events[:-1]] == ["cell", "cell"]
            status, job = await client.request(
                "GET", submitted["links"]["result"]
            )
            assert status == 200 and job["status"] == "done"
            return job

        job = self.run_server(scenario, tmp_path)
        assert [row["label"] for row in job["rows"]] == ["btb-only", "t"]
        for row in job["rows"]:
            assert 0.0 <= row["indirect"] <= 1.0
            assert 0.0 <= row["overall"] <= 1.0

    def test_rows_match_direct_sweep(self, tmp_path):
        """The wire numbers are the batch numbers: same cells, same rates."""
        spec = {"benchmarks": ["perl"],
                "cells": [{"preset": "btb-only"},
                          {"preset": "tagless-gshare9"}]}

        async def scenario(service, client):
            _, submitted = await client.request("POST", "/sweeps", spec)
            while True:
                _, job = await client.request(
                    "GET", submitted["links"]["result"]
                )
                if job["status"] != "running":
                    return job
                await asyncio.sleep(0.01)

        job = self.run_server(scenario, tmp_path)
        plan = parse_spec_document(spec)
        direct = run_cells(
            [SweepCell(row.benchmark, row.config) for row in plan.rows],
            jobs=1, trace_length=TRACE_LENGTH, result_cache=None,
        )
        assert job["status"] == "done"
        for row, stats in zip(job["rows"], direct):
            assert row["indirect"] == stats.indirect_mispred_rate
            assert row["conditional"] == stats.conditional_mispred_rate
            assert row["overall"] == stats.overall_mispred_rate

    def test_bad_specs_get_400_with_key_path(self, tmp_path):
        async def scenario(service, client):
            status, error = await client.request(
                "POST", "/sweeps", {"cells": [{"preset": "nope"}]}
            )
            assert status == 400
            assert "cells[0].preset" in error["error"]
            status, error = await client.request("POST", "/sweeps", {})
            assert status == 400 and "cells" in error["error"]
            return True

        assert self.run_server(scenario, tmp_path)

    def test_unknown_routes_and_jobs_get_404(self, tmp_path):
        async def scenario(service, client):
            status, error = await client.request("GET", "/sweeps/zzz")
            assert status == 404 and "zzz" in error["error"]
            status, error = await client.request("GET", "/nope")
            assert status == 404 and "routes" in error
            return True

        assert self.run_server(scenario, tmp_path)

    def test_connection_survives_requests(self, tmp_path):
        """Keep-alive: many requests on one connection, no reconnects."""
        async def scenario(service, client):
            for _ in range(20):
                status, _ = await client.request("GET", "/healthz")
                assert status == 200
            return True

        assert self.run_server(scenario, tmp_path)

    def test_two_servers_share_one_cache_directory(self, tmp_path):
        """The acceptance scenario: two instances, one cache dir, one
        sweep mirrored to both — merged rows bit-identical to batch."""
        spec = {"benchmarks": ["perl"],
                "cells": [{"preset": "btb-only"},
                          {"preset": "tagless-gshare9"},
                          {"preset": "tagged-4way"}]}
        cache_dir = tmp_path / "shared"

        async def main():
            services = [
                SweepService(host="127.0.0.1", port=0, jobs=0,
                             trace_length=TRACE_LENGTH,
                             result_cache=ResultCache(cache_dir))
                for _ in range(2)
            ]
            for service in services:
                service.scheduler.poll_interval_s = 0.01
                await service.start()
            clients = [ServiceClient("127.0.0.1", s.port) for s in services]
            for client in clients:
                await client.connect()
            try:
                submits = [await c.request("POST", "/sweeps", spec)
                           for c in clients]
                jobs = []
                for client, (_, submitted) in zip(clients, submits):
                    while True:
                        _, job = await client.request(
                            "GET", submitted["links"]["result"]
                        )
                        if job["status"] != "running":
                            break
                        await asyncio.sleep(0.01)
                    jobs.append(job)
                stats = [
                    (await c.request("GET", "/stats"))[1] for c in clients
                ]
                return jobs, stats
            finally:
                for client in clients:
                    await client.close()
                for service in services:
                    await service.close()

        jobs, stats = asyncio.run(main())
        assert all(job["status"] == "done" for job in jobs)
        assert jobs[0]["rows"] == jobs[1]["rows"]
        computed = sum(s["scheduler"]["computed"] for s in stats)
        assert computed == 3  # each cell simulated once across the fleet
        plan = parse_spec_document(spec)
        direct = run_cells(
            [SweepCell(row.benchmark, row.config) for row in plan.rows],
            jobs=1, trace_length=TRACE_LENGTH, result_cache=None,
        )
        for row, cell_stats in zip(jobs[0]["rows"], direct):
            assert row["indirect"] == cell_stats.indirect_mispred_rate
            assert row["overall"] == cell_stats.overall_mispred_rate


# ----------------------------------------------------------------------
# The btb2 kind through the full service path (PR: server-scale BTB).
# ----------------------------------------------------------------------
class TestBtb2ServicePath:
    """A backstop-trait kind must be a first-class service citizen: the
    server accepts btb2 sweeps over server workloads, the wire numbers
    are bit-identical to a direct batch run, and the scheduler's savings
    levels (dedup, result cache) apply to btb2 cells like any other."""

    SPEC = {
        "benchmarks": ["webserver_like"],
        "cells": [
            {"preset": "btb-only"},
            {"preset": "btb2-micro", "label": "micro"},
            {"engine": {"target_cache": {"kind": "btb2", "entries": 64,
                                         "assoc": 4, "l2_entries": 8192,
                                         "l2_assoc": 8}},
             "label": "btb2-8k"},
        ],
    }

    def _submit_and_wait(self, tmp_path):
        async def scenario(service, client):
            _, submitted = await client.request("POST", "/sweeps", self.SPEC)
            while True:
                _, job = await client.request(
                    "GET", submitted["links"]["result"]
                )
                if job["status"] != "running":
                    break
                await asyncio.sleep(0.01)
            # Same spec again: every cell is warm now (dedup or cache).
            _, submitted = await client.request("POST", "/sweeps", self.SPEC)
            while True:
                _, again = await client.request(
                    "GET", submitted["links"]["result"]
                )
                if again["status"] != "running":
                    break
                await asyncio.sleep(0.01)
            _, stats = await client.request("GET", "/stats")
            return job, again, stats

        return TestServerEndToEnd().run_server(scenario, tmp_path)

    def test_btb2_sweep_matches_direct_run_and_replays_warm(self, tmp_path):
        job, again, stats = self._submit_and_wait(tmp_path)
        assert job["status"] == "done"
        plan = parse_spec_document(self.SPEC)
        direct = run_cells(
            [SweepCell(row.benchmark, row.config) for row in plan.rows],
            jobs=1, trace_length=TRACE_LENGTH, result_cache=None,
        )
        for row, cell_stats in zip(job["rows"], direct):
            assert row["indirect"] == cell_stats.indirect_mispred_rate
            assert row["overall"] == cell_stats.overall_mispred_rate
        # The capacity story survives the wire: on the server workload the
        # two-level BTB beats the BTB-only baseline.
        baseline, micro, big = (row["indirect"] for row in job["rows"])
        assert micro < baseline
        assert big < baseline
        # Warm replay: the scheduler computed each cell exactly once.
        assert again["status"] == "done"
        assert again["rows"] == job["rows"]
        scheduler = stats["scheduler"]
        assert scheduler["computed"] == len(self.SPEC["cells"])
        assert (scheduler["dedup"] + scheduler["cache_hit"]
                == len(self.SPEC["cells"]))

    def test_loadgen_population_includes_btb2(self):
        population = spec_population(("webserver_like",))
        presets = [doc["cells"][0].get("preset") for doc in population]
        assert "btb2-micro" in presets


# ----------------------------------------------------------------------
# HTTP plumbing edge cases.
# ----------------------------------------------------------------------
class TestHttpPlumbing:
    def _read(self, payload: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(payload)
            reader.feed_eof()
            from repro.service.http import read_request

            return await read_request(reader)

        return asyncio.run(go())

    def test_parses_request_line_headers_and_body(self):
        request = self._read(
            b"POST /sweeps?x=1 HTTP/1.1\r\nHost: h\r\n"
            b"Content-Length: 2\r\n\r\n{}"
        )
        assert request.method == "POST"
        assert request.path == "/sweeps"
        assert request.query == {"x": "1"}
        assert request.body == b"{}"
        assert request.keep_alive

    def test_connection_close_disables_keep_alive(self):
        request = self._read(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert self._read(b"") is None

    def test_torn_request_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            self._read(b"GET / HT")

    def test_malformed_request_line_raises(self):
        with pytest.raises(ProtocolError):
            self._read(b"NONSENSE\r\n\r\n")

    def test_oversized_body_raises(self):
        with pytest.raises(ProtocolError):
            self._read(
                b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
            )


# ----------------------------------------------------------------------
# The load generator.
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_population_covers_table4_and_presets(self):
        population = spec_population(("perl",))
        assert len(population) > 8
        assert all(len(doc["cells"]) == 1 for doc in population)

    def test_mix_is_seeded_and_skewed(self):
        mix_a = build_mix(200, seed=3, benchmarks=("perl",))
        mix_b = build_mix(200, seed=3, benchmarks=("perl",))
        assert mix_a == mix_b  # reproducible
        counts = {}
        for doc in mix_a:
            counts[json.dumps(doc, sort_keys=True)] = (
                counts.get(json.dumps(doc, sort_keys=True), 0) + 1
            )
        # Zipf skew: the hottest spec dominates the median one.
        assert max(counts.values()) >= 5 * sorted(counts.values())[
            len(counts) // 2
        ]

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 3.0
        assert percentile([], 0.5) == 0.0

    def test_replay_against_live_server_hits_cache(self, tmp_path):
        """Second replay of the same mix: >=90% of cells dedup/cache."""
        async def main():
            service = SweepService(
                host="127.0.0.1", port=0, jobs=0,
                trace_length=TRACE_LENGTH,
                result_cache=ResultCache(tmp_path / "svc"),
            )
            await service.start()
            try:
                first = await run_load(
                    "127.0.0.1", service.port, requests=30, concurrency=8,
                    seed=11, benchmarks=("perl",), poll_interval_s=0.005,
                )
                second = await run_load(
                    "127.0.0.1", service.port, requests=30, concurrency=8,
                    seed=11, benchmarks=("perl",), poll_interval_s=0.005,
                )
                return first, second
            finally:
                await service.close()

        first, second = asyncio.run(main())
        for payload in (first, second):
            assert payload["throughput"]["requests_done"] == 30
            assert payload["throughput"]["requests_failed"] == 0
            assert payload["errors"] == []
            assert payload["latency"]["p50_s"] > 0.0
            assert payload["latency"]["p99_s"] >= payload["latency"]["p50_s"]
            assert payload["gate_metrics"] == [
                "latency.p50_s", "latency.p95_s", "latency.p99_s"
            ]
        # The replay finds every cell warm: the acceptance bar is >=90%.
        assert second["scheduler"]["saved_rate"] >= 0.9
        assert second["scheduler"]["computed"] == 0
