"""Unit tests for trace serialisation and the disk cache."""

import numpy as np
import pytest

from repro.guest.builder import ProgramBuilder
from repro.guest.vm import run_program
from repro.trace.io import cached_trace, default_cache_dir, load_trace, save_trace
from repro.trace.trace import Trace


@pytest.fixture
def trace():
    b = ProgramBuilder()
    b.li(1, 3)
    b.label("loop")
    b.addi(1, 1, -1)
    b.store(1, 1, 0x10000)
    b.bne(1, 0, "loop")
    b.halt()
    return Trace.from_raw(run_program(b.build()))


def test_roundtrip(tmp_path, trace):
    path = tmp_path / "t.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded == trace


def test_roundtrip_preserves_dtypes(tmp_path, trace):
    path = tmp_path / "t.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.pc.dtype == np.uint64
    assert loaded.src1.dtype == np.int8


def test_save_creates_parent_directories(tmp_path, trace):
    path = tmp_path / "deep" / "nested" / "t.npz"
    save_trace(trace, path)
    assert path.exists()


def test_version_mismatch_rejected(tmp_path, trace):
    path = tmp_path / "t.npz"
    save_trace(trace, path)
    # rewrite with a bogus version
    data = dict(np.load(path))
    data["version"] = np.int64(999)
    np.savez_compressed(path, **data)
    with pytest.raises(ValueError, match="version"):
        load_trace(path)


def test_cached_trace_generates_once(tmp_path, trace):
    calls = []

    def generate():
        calls.append(1)
        return trace

    first = cached_trace("key", generate, cache_dir=tmp_path)
    second = cached_trace("key", generate, cache_dir=tmp_path)
    assert len(calls) == 1
    assert first == second == trace


def test_cached_trace_regenerates_on_corruption(tmp_path, trace):
    cached_trace("key", lambda: trace, cache_dir=tmp_path)
    victim = tmp_path / "key.npz"
    victim.write_bytes(b"not an npz archive")
    recovered = cached_trace("key", lambda: trace, cache_dir=tmp_path)
    assert recovered == trace


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"


def test_workload_cache_key_tracks_code(tmp_path, monkeypatch):
    """Editing workload code must invalidate cached traces (fingerprint)."""
    from repro.workloads.registry import _code_fingerprint

    fingerprint = _code_fingerprint("repro.workloads.perl_like")
    assert len(fingerprint) == 10
    assert fingerprint == _code_fingerprint("repro.workloads.perl_like")
    assert fingerprint != _code_fingerprint("repro.workloads.gcc_like")
