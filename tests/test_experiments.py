"""Tests for the experiment harness: structure plus the paper's key
qualitative findings at a reduced trace length."""

import pytest

from repro.experiments import ExperimentContext, run_experiment
from repro.experiments.common import EXPERIMENT_MODULES


@pytest.fixture(scope="module")
def ctx():
    """One shared context: big enough for stable orderings, small enough
    for test-suite latency."""
    return ExperimentContext(trace_length=120_000, use_trace_cache=False)


class TestHarness:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENT_MODULES) == {
            "table1", "figures1_8", "table2", "table4", "table5", "table6",
            "table7", "table8", "table9", "figures12_13", "headline",
            "oo_future_work", "cascaded", "modern", "capacity",
            "calibration", "server_btb", "switch_lowering",
        }

    def test_table_formatting(self, ctx):
        table = run_experiment("table4", ctx)
        text = table.format()
        assert "Table 4" in text
        assert "gshare(9)" in text
        assert "%" in text

    def test_cell_accessor(self, ctx):
        table = run_experiment("table4", ctx)
        assert 0.0 <= table.cell("gshare(9)", "perl") <= 1.0
        with pytest.raises(KeyError):
            table.cell("nonexistent", "perl")


class TestTable1(object):
    def test_counts_and_rates(self, ctx):
        table = run_experiment("table1", ctx)
        assert len(table.rows) == 8
        for label, values in table.rows:
            instructions, branches, indirect, rate, paper = values
            assert instructions == 120_000
            assert 0 < indirect < branches < instructions
            assert 0.0 < rate < 1.0


class TestFigures1_8:
    def test_rows_sum_to_one(self, ctx):
        table = run_experiment("figures1_8", ctx)
        for label, values in table.rows:
            assert sum(values) == pytest.approx(1.0), label


class TestTable2:
    def test_mixed_result(self, ctx):
        """2-bit helps some benchmarks and hurts others (paper Table 2)."""
        table = run_experiment("table2", ctx)
        deltas = [values[2] for _, values in table.rows]
        assert any(d < 0 for d in deltas)
        assert any(d > 0 for d in deltas)

    def test_helps_the_skewed_dispatch_benchmarks(self, ctx):
        table = run_experiment("table2", ctx)
        assert table.cell("compress", "delta") < 0
        assert table.cell("ijpeg", "delta") < 0


class TestTable4:
    def test_target_cache_beats_btb(self, ctx):
        table = run_experiment("table4", ctx)
        for benchmark in ("perl", "gcc"):
            btb = ctx.baseline(benchmark).indirect_mispred_rate
            assert table.cell("gshare(9)", benchmark) < btb

    def test_gshare_is_best_for_gcc(self, ctx):
        """gshare utilises the whole table (paper §4.2.1)."""
        table = run_experiment("table4", ctx)
        gshare = table.cell("gshare(9)", "gcc")
        assert gshare <= table.cell("GAg(9)", "gcc")
        assert gshare <= table.cell("GAs(8,1)", "gcc")

    def test_address_bits_help_gcc_more_than_perl(self, ctx):
        """GAs loses less (or gains) vs GAg on gcc, the many-static-jump
        benchmark — the paper's §4.2.1 contrast."""
        table = run_experiment("table4", ctx)
        perl_gap = table.cell("GAs(8,1)", "perl") - table.cell("GAg(9)", "perl")
        gcc_gap = table.cell("GAs(8,1)", "gcc") - table.cell("GAg(9)", "gcc")
        assert gcc_gap < perl_gap


class TestPathHistoryTables:
    def test_table6_perl_prefers_one_bit_per_target(self, ctx):
        table = run_experiment("table6", ctx)
        one_bit = table.cell("perl 1b/target", "ind jmp")
        three_bit = table.cell("perl 3b/target", "ind jmp")
        assert one_bit >= three_bit

    def test_table6_callret_useless_for_perl(self, ctx):
        table = run_experiment("table6", ctx)
        assert table.cell("perl 1b/target", "call/ret") < 0.05
        assert table.cell("perl 1b/target", "ind jmp") > 0.10


class TestTaggedTables:
    def test_table7_address_indexing_thrashes_at_low_assoc(self, ctx):
        table = run_experiment("table7", ctx)
        for benchmark in ("perl", "gcc"):
            addr_1way = table.cell(f"{benchmark} 1-way", "Addr")
            xor_1way = table.cell(f"{benchmark} 1-way", "Hist-Xor")
            assert xor_1way > addr_1way + 0.05

    def test_table7_associativity_rescues_address_indexing(self, ctx):
        table = run_experiment("table7", ctx)
        assert (table.cell("perl 32-way", "Addr")
                > table.cell("perl 1-way", "Addr"))

    def test_table9_long_history_needs_associativity(self, ctx):
        """16 bits loses at 1-way, catches up (or wins) by 8-way (perl)."""
        table = run_experiment("table9", ctx)
        gap_1way = (table.cell("perl 1-way", "16 bits")
                    - table.cell("perl 1-way", "9 bits"))
        gap_8way = (table.cell("perl 8-way", "16 bits")
                    - table.cell("perl 8-way", "9 bits"))
        assert gap_8way > gap_1way


class TestHistoryTypeContrast:
    def test_path_wins_on_perl_pattern_wins_on_gcc(self, ctx):
        """The paper's §4.2.3 headline contrast."""
        from repro.experiments.configs import (
            pattern_history,
            path_scheme_history,
            tagless_engine,
        )

        perl_pattern = ctx.prediction(
            "perl", tagless_engine(history=pattern_history(9))
        ).indirect_mispred_rate
        perl_path = ctx.prediction(
            "perl", tagless_engine(history=path_scheme_history("ind jmp"))
        ).indirect_mispred_rate
        gcc_pattern = ctx.prediction(
            "gcc", tagless_engine(history=pattern_history(9))
        ).indirect_mispred_rate
        gcc_path = ctx.prediction(
            "gcc", tagless_engine(history=path_scheme_history("ind jmp"))
        ).indirect_mispred_rate
        assert perl_path < perl_pattern
        assert gcc_pattern < gcc_path


class TestHeadline:
    def test_headline_claims_hold(self, ctx):
        table = run_experiment("headline", ctx)
        for benchmark in ("perl", "gcc"):
            assert table.cell(benchmark, "mispred reduction") > 0.5
            assert table.cell(benchmark, "exec reduction (tagless)") > 0.03
        # perl gains more than gcc, as in the paper
        assert (table.cell("perl", "exec reduction (tagless)")
                > table.cell("gcc", "exec reduction (tagless)"))
