"""Unit tests for the two-level direction predictors."""

from repro.predictors.direction import DirectionConfig, DirectionPredictor


def _predictor(scheme="gshare", history_bits=6, address_bits=0):
    return DirectionPredictor(DirectionConfig(
        scheme=scheme, history_bits=history_bits, address_bits=address_bits,
    ))


class TestCounters:
    def test_initially_weakly_taken(self):
        predictor = _predictor()
        assert predictor.predict(0x100, 0) is True

    def test_learns_not_taken(self):
        predictor = _predictor()
        for _ in range(3):
            predictor.update(0x100, 0, taken=False)
        assert predictor.predict(0x100, 0) is False

    def test_saturation_gives_hysteresis(self):
        predictor = _predictor()
        for _ in range(10):
            predictor.update(0x100, 0, taken=True)
        predictor.update(0x100, 0, taken=False)
        # one contrary outcome does not flip a saturated counter
        assert predictor.predict(0x100, 0) is True

    def test_counters_stay_in_range(self):
        predictor = _predictor()
        for _ in range(100):
            predictor.update(0x100, 0, taken=True)
        for _ in range(4):
            predictor.update(0x100, 0, taken=False)
        assert predictor.predict(0x100, 0) is False


class TestIndexing:
    def test_gshare_separates_histories(self):
        predictor = _predictor("gshare", history_bits=8)
        # same pc, two histories -> independent counters
        for _ in range(3):
            predictor.update(0x100, 0b00000001, taken=True)
            predictor.update(0x100, 0b00000010, taken=False)
        assert predictor.predict(0x100, 0b00000001) is True
        assert predictor.predict(0x100, 0b00000010) is False

    def test_gag_ignores_pc(self):
        predictor = _predictor("gag", history_bits=8)
        for _ in range(3):
            predictor.update(0x100, 0b1, taken=False)
        assert predictor.predict(0x999 * 4, 0b1) is False

    def test_gas_partitions_by_address(self):
        predictor = _predictor("gas", history_bits=4, address_bits=2)
        for _ in range(3):
            predictor.update(0 << 2, 0b1, taken=False)
        # a pc mapping to a different partition keeps its own counter
        assert predictor.predict(1 << 2, 0b1) is True
        assert predictor.predict(0 << 2, 0b1) is False

    def test_table_size(self):
        assert _predictor("gshare", history_bits=12).table_size == 4096
        assert _predictor("gas", 4, 2).table_size == 64


class TestPAs:
    def test_per_address_history_is_private(self):
        predictor = _predictor("pas", history_bits=4, address_bits=2)
        # train an alternating pattern at one pc
        outcomes = [True, False] * 20
        for outcome in outcomes:
            predictor.update(0x100, 0, taken=outcome)
        # after training, the local history disambiguates the alternation
        hits = 0
        expected = True
        for _ in range(10):
            if predictor.predict(0x100, 0) == expected:
                hits += 1
            predictor.update(0x100, 0, taken=expected)
            expected = not expected
        assert hits >= 9

    def test_global_history_argument_ignored_for_pas(self):
        predictor = _predictor("pas", history_bits=4, address_bits=1)
        predictor.update(0x100, 0xFFFF, taken=False)
        a = predictor.predict(0x100, 0x0000)
        b = predictor.predict(0x100, 0xFFFF)
        assert a == b


class TestLearnsRealPattern:
    def test_gshare_learns_history_correlated_branch(self):
        """Branch taken iff last outcome was not-taken (alternating)."""
        predictor = _predictor("gshare", history_bits=4)
        history = 0
        correct = 0
        total = 200
        outcome = True
        for i in range(total):
            prediction = predictor.predict(0x40, history)
            if prediction == outcome:
                correct += 1
            predictor.update(0x40, history, outcome)
            history = ((history << 1) | int(outcome)) & 0xF
            outcome = not outcome
        assert correct / total > 0.9
