"""The obs-discipline checker: telemetry hygiene on synthetic sources."""

import textwrap
from pathlib import Path

from repro.analysis import CHECKERS
from repro.analysis.base import Project, SourceFile
from repro.analysis.obs_discipline import ObsDisciplineChecker

_OBS_IMPORT = "from repro.obs import get_sink\n"


def _project(code, relpath="runner/pool.py", with_import=True):
    text = (_OBS_IMPORT if with_import else "") + textwrap.dedent(code)
    return Project(Path("."), [SourceFile.from_text(relpath, text)])


def _run(code, relpath="runner/pool.py", with_import=True, hot_paths=()):
    checker = ObsDisciplineChecker(hot_paths=hot_paths)
    return checker.run(_project(code, relpath, with_import))


class TestHotPathRule:
    HOT = (("predictors/engine.py", "simulate", False),)

    def test_incr_inside_a_hot_loop_is_flagged(self):
        code = """
        def simulate(records):
            sink = get_sink()
            for record in records:
                sink.incr("branches")
        """
        findings = _run(code, relpath="predictors/engine.py",
                        hot_paths=self.HOT)
        assert [f.rule for f in findings] == ["obs-in-hot-path"]
        assert "incr" in findings[0].message

    def test_span_inside_a_hot_loop_is_flagged(self):
        code = """
        def simulate(records):
            sink = get_sink()
            for record in records:
                with sink.span("branch"):
                    pass
        """
        findings = _run(code, relpath="predictors/engine.py",
                        hot_paths=self.HOT)
        assert "obs-in-hot-path" in [f.rule for f in findings]

    def test_get_sink_inside_a_hot_loop_is_flagged(self):
        code = """
        def simulate(records):
            for record in records:
                get_sink()
        """
        findings = _run(code, relpath="predictors/engine.py",
                        hot_paths=self.HOT)
        assert [f.rule for f in findings] == ["obs-in-hot-path"]

    def test_telemetry_around_the_loop_is_allowed(self):
        code = """
        def simulate(records):
            sink = get_sink()
            with sink.span("simulate"):
                for record in records:
                    pass
            sink.incr("runs")
        """
        assert _run(code, relpath="predictors/engine.py",
                    hot_paths=self.HOT) == []

    def test_whole_body_hot_function_is_covered(self):
        code = """
        class Engine:
            def process_branch(self, pc):
                self.sink.incr("branches")
        """
        hot = (("predictors/engine.py", "Engine.process_branch", True),)
        findings = _run(code, relpath="predictors/engine.py", hot_paths=hot)
        assert [f.rule for f in findings] == ["obs-in-hot-path"]

    def test_files_not_importing_obs_are_ignored(self):
        # 'event' and 'flush' are generic method names; without the
        # repro.obs import they must not trip the rule.
        code = """
        def simulate(records):
            for record in records:
                record.event("x")
                record.flush()
        """
        assert _run(code, relpath="predictors/engine.py",
                    with_import=False, hot_paths=self.HOT) == []


class TestSpanManagedRule:
    def test_bare_span_call_is_flagged(self):
        code = """
        def run(sink):
            sink.span("phase")
        """
        findings = _run(code)
        assert [f.rule for f in findings] == ["obs-span-unmanaged"]

    def test_assigned_span_is_flagged(self):
        code = """
        def run(sink):
            span = sink.span("phase")
            return span
        """
        findings = _run(code)
        assert [f.rule for f in findings] == ["obs-span-unmanaged"]

    def test_with_managed_span_is_allowed(self):
        code = """
        def run(sink):
            with sink.span("phase", benchmark="perl"):
                pass
        """
        assert _run(code) == []

    def test_chained_get_sink_span_is_allowed(self):
        code = """
        def run():
            with get_sink().span("phase"):
                pass
        """
        assert _run(code) == []

    def test_multi_item_with_counts_every_item(self):
        code = """
        def run(a, b):
            with a.span("one"), b.span("two"):
                pass
        """
        assert _run(code) == []

    def test_span_name_on_unrelated_api_without_import_is_ignored(self):
        code = """
        def run(tracer):
            tracer.span("not-ours")
        """
        assert _run(code, with_import=False) == []


class TestShippedTree:
    def test_registered_in_the_checker_registry(self):
        assert any(isinstance(c, ObsDisciplineChecker) for c in CHECKERS)

    def test_shipped_sources_are_clean(self):
        project = Project.load()
        findings = ObsDisciplineChecker().run(project)
        assert findings == [], [f.format() for f in findings]

    def test_instrumented_modules_are_actually_checked(self):
        # the rule only fires in files importing repro.obs; the modules the
        # subsystem instruments must all qualify, or the lint is vacuous
        from repro.analysis.obs_discipline import _imports_obs

        project = Project.load()
        for relpath in ("runner/pool.py", "runner/cache.py",
                        "predictors/streams.py", "bench.py",
                        "experiments/common.py"):
            source = project.file(relpath)
            assert source is not None, relpath
            assert _imports_obs(source.tree), relpath
