"""The shared spec parser: strict validation with key-path error messages.

``repro sweep --spec`` and ``POST /sweeps`` both parse through
:mod:`repro.sweepspec`; these tests pin the contract both front ends rely
on — every structural mistake is a one-line :exc:`SpecError` naming the
offending key path, and valid documents produce the rows in spec order.
"""

import pytest

from repro.predictors import EngineConfig
from repro.sweepspec import SpecError, parse_spec_document, parse_spec_text


def test_minimal_preset_document():
    plan = parse_spec_document(
        {"benchmarks": ["perl"], "cells": [{"preset": "btb-only"}]}
    )
    assert [row.label for row in plan.rows] == ["btb-only"]
    assert plan.cells() == [("perl", plan.rows[0].config)]
    assert plan.plugins == ()


def test_default_benchmarks_are_the_focus_pair():
    plan = parse_spec_document({"cells": [{"preset": "btb-only"}]})
    assert [row.benchmark for row in plan.rows] == ["perl", "gcc"]


def test_rows_preserve_spec_order_and_overrides():
    plan = parse_spec_document({
        "benchmarks": ["perl"],
        "cells": [
            {"preset": "tagless-gshare9", "label": "mine"},
            {"engine": {"target_cache": {"kind": "tagless"}},
             "benchmarks": ["gcc", "go"]},
        ],
    })
    assert [(row.label, row.benchmark) for row in plan.rows] == [
        ("mine", "perl"),
        ("gshare(9)", "gcc"),
        ("gshare(9)", "go"),
    ]
    assert all(isinstance(row.config, EngineConfig) for row in plan.rows)


def test_composite_benchmark_names_select_a_lowering():
    plan = parse_spec_document({
        "benchmarks": ["perl@if_tree", "perl@jump_table", "gcc@clustered"],
        "cells": [{"preset": "btb-only"}],
    })
    # '@jump_table' is the default shape and canonicalises to the bare
    # name, so scheduler dedup and the caches see one spelling per trace.
    assert [row.benchmark for row in plan.rows] == [
        "perl@if_tree", "perl", "gcc@clustered",
    ]


@pytest.mark.parametrize("document, fragment", [
    (5, "must be a JSON object"),
    ({"cells": [{"preset": "btb-only"}], "cels": []}, "unknown key(s): cels"),
    ({"plugins": "notalist", "cells": [{"preset": "btb-only"}]},
     "'plugins' must be a list of strings"),
    ({"benchmarks": "perl", "cells": [{"preset": "btb-only"}]},
     "'benchmarks' must be a list of strings"),
    ({"benchmarks": ["nope"], "cells": [{"preset": "btb-only"}]},
     "'benchmarks' names unknown benchmark 'nope'"),
    ({"benchmarks": [], "cells": [{"preset": "btb-only"}]},
     "'benchmarks' must not be empty"),
    ({"cells": 5}, "'cells' must be a non-empty list"),
    ({"cells": []}, "'cells' must be a non-empty list"),
    ({"cells": [7]}, "'cells[0]' must be an object"),
    ({"cells": [{}]}, "'cells[0]' needs exactly one of 'preset' or 'engine'"),
    ({"cells": [{"preset": "a", "engine": {}}]},
     "'cells[0]' needs exactly one of"),
    ({"cells": [{"preset": "btb-only", "extra": 1}]},
     "'cells[0]' has unknown key(s): extra"),
    ({"cells": [{"preset": 5}]}, "'cells[0].preset' must be a string"),
    ({"cells": [{"preset": "nope"}]},
     "'cells[0].preset': unknown preset 'nope'"),
    ({"cells": [{"engine": 5}]},
     "'cells[0].engine' must be an engine spec object"),
    ({"cells": [{"preset": "btb-only"}, {"engine": {"bogus_key": 1}}]},
     "'cells[1].engine':"),
    ({"cells": [{"preset": "btb-only", "label": 9}]},
     "'cells[0].label' must be a string"),
    ({"cells": [{"preset": "btb-only", "benchmarks": ["zzz"]}]},
     "'cells[0].benchmarks' names unknown benchmark 'zzz'"),
    ({"cells": [{"preset": "btb-only", "benchmarks": ["perl@bogus"]}]},
     "'cells[0].benchmarks' names unknown lowering in 'perl@bogus'"),
    ({"cells": [{"preset": "btb-only", "benchmarks": ["zzz@if_tree"]}]},
     "'cells[0].benchmarks' names unknown benchmark 'zzz@if_tree'"),
])
def test_structural_errors_name_the_key_path(document, fragment):
    with pytest.raises(SpecError) as excinfo:
        parse_spec_document(document)
    message = str(excinfo.value)
    assert fragment in message
    assert "\n" not in message  # one line, CLI/service print it verbatim


def test_error_messages_list_valid_alternatives():
    with pytest.raises(SpecError, match="available: .*tagless-gshare9"):
        parse_spec_document({"cells": [{"preset": "nope"}]})


def test_parse_text_wraps_json_errors():
    with pytest.raises(SpecError, match="my.json is not valid JSON"):
        parse_spec_text("{not json", source="my.json")


def test_parse_text_round_trip():
    plan = parse_spec_text(
        '{"benchmarks": ["perl"], "cells": [{"preset": "btb-only"}]}'
    )
    assert len(plan.rows) == 1
