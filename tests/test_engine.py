"""Unit tests for the fetch-engine composite (§3 wiring)."""

import numpy as np
import pytest

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import BranchKind
from repro.guest.vm import run_program
from repro.predictors import (
    EngineConfig,
    FetchEngine,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    simulate,
)
from repro.predictors.btb import UpdateStrategy
from repro.predictors.history import PathFilter
from repro.trace.trace import Trace


def _trace(build_body, entry=0, n=50_000):
    b = ProgramBuilder()
    build_body(b)
    program = b.build(entry=entry)
    return Trace.from_raw(run_program(program, max_instructions=n))


def _alternating_dispatch(n_targets=2):
    """A jr that cycles deterministically through targets."""
    def body(b):
        b.jmp("main")
        table = b.data_table([f"h{i}" for i in range(n_targets)])
        for i in range(n_targets):
            b.label(f"h{i}")
            b.addi(20, 20, i)
            b.addi(20, 20, i)  # vary length? keep equal, fine
            b.jmp("cont")
        b.label("main")
        b.li(10, 0)
        b.label("loop")
        b.li(2, n_targets)
        b.mod(3, 10, 2)
        b.shli(3, 3, 2)
        b.li(4, table)
        b.add(3, 3, 4)
        b.load(5, 3)
        b.jr(5)
        b.label("cont")
        b.addi(10, 10, 1)
        b.jmp("loop")
    return body


class TestBaselineEngine:
    def test_alternating_targets_defeat_btb(self):
        trace = _trace(_alternating_dispatch(2), entry="main", n=20_000)
        stats = simulate(trace, EngineConfig())
        # the target alternates every execution: last-target is ~100% wrong
        assert stats.indirect_mispred_rate > 0.95

    def test_constant_target_learned_by_btb(self):
        trace = _trace(_alternating_dispatch(1), entry="main", n=20_000)
        stats = simulate(trace, EngineConfig())
        assert stats.indirect_mispred_rate < 0.01

    def test_loop_branch_learned_by_direction_predictor(self):
        def body(b):
            b.li(1, 0)
            b.li(2, 10_000)
            b.label("loop")
            b.addi(1, 1, 1)
            b.blt(1, 2, "loop")
            b.halt()
        trace = _trace(body, n=50_000)
        stats = simulate(trace, EngineConfig())
        assert stats.conditional_mispred_rate < 0.01

    def test_returns_predicted_by_ras(self):
        def body(b):
            b.jmp("main")
            b.label("fn")
            b.addi(20, 20, 1)
            b.ret()
            b.label("main")
            b.label("loop")
            b.call("fn")
            b.jmp("loop")
        trace = _trace(body, entry="main", n=20_000)
        stats = simulate(trace, EngineConfig())
        returns = stats.counters(BranchKind.RETURN)
        assert returns.executed > 100
        assert returns.rate < 0.01


class TestTargetCacheIntegration:
    def test_history_breaks_the_alternation(self):
        trace = _trace(_alternating_dispatch(4), entry="main", n=20_000)
        base = simulate(trace, EngineConfig())
        # two bits per target: the equal-length handlers are 3 words
        # apart, so a single address bit cannot tell all four apart
        with_tc = simulate(trace, EngineConfig(
            target_cache=TargetCacheConfig(kind="tagless"),
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=9,
                                  bits_per_target=2,
                                  path_filter=PathFilter.IND_JMP,
                                  address_bit=2),
        ))
        assert base.indirect_mispred_rate > 0.9
        assert with_tc.indirect_mispred_rate < 0.05

    def test_oracle_only_misses_nothing(self):
        trace = _trace(_alternating_dispatch(3), entry="main", n=20_000)
        stats = simulate(trace, EngineConfig(
            target_cache=TargetCacheConfig(kind="oracle"),
        ))
        # the first execution still misses: the BTB has not yet identified
        # the instruction as an indirect jump, so fetch never consults the
        # target cache (faithful to the paper's fetch mechanism)
        assert stats.indirect_mispredictions <= 1

    def test_returns_stay_on_ras_by_default(self, perl_trace):
        """The TC must not swallow returns (paper footnote 1)."""
        stats = simulate(perl_trace, EngineConfig(
            target_cache=TargetCacheConfig(kind="tagless"),
        ))
        assert stats.counters(BranchKind.RETURN).rate < 0.05

    def test_tc_handles_returns_ablation_runs(self, perl_trace):
        stats = simulate(perl_trace, EngineConfig(
            target_cache=TargetCacheConfig(kind="tagless"),
            target_cache_handles_returns=True,
        ))
        assert stats.counters(BranchKind.RETURN).executed > 0


class TestStatsAccounting:
    def test_kind_counts_match_trace(self, perl_trace):
        stats = simulate(perl_trace, EngineConfig())
        assert stats.indirect_jumps == int(perl_trace.is_indirect_jump.sum())
        assert stats.counters(BranchKind.COND_DIRECT).executed == int(
            perl_trace.is_conditional.sum()
        )
        assert stats.branches == int(perl_trace.is_branch.sum())

    def test_mispredict_mask_alignment(self, perl_trace):
        stats = simulate(perl_trace, EngineConfig(), collect_mask=True)
        mask = stats.mispredict_mask
        assert mask.shape == (len(perl_trace),)
        # mask may only be set on branch rows
        assert not np.any(mask & ~perl_trace.is_branch)
        assert int(mask.sum()) == stats.branch_mispredictions

    def test_mask_not_collected_by_default(self, perl_trace):
        stats = simulate(perl_trace, EngineConfig())
        assert stats.mispredict_mask is None

    def test_overall_rate_consistency(self, perl_trace):
        stats = simulate(perl_trace, EngineConfig())
        assert stats.overall_mispred_rate == pytest.approx(
            stats.branch_mispredictions / stats.branches
        )

    def test_btb_counters_populated(self, perl_trace):
        stats = simulate(perl_trace, EngineConfig())
        assert stats.btb_lookups == stats.branches
        assert 0 < stats.btb_hits <= stats.btb_lookups


class TestEngineDeterminism:
    def test_same_config_same_result(self, gcc_trace):
        config = EngineConfig(
            target_cache=TargetCacheConfig(kind="tagged", assoc=4),
        )
        a = simulate(gcc_trace, config)
        b = simulate(gcc_trace, config)
        assert a.indirect_mispredictions == b.indirect_mispredictions
        assert a.branch_mispredictions == b.branch_mispredictions


class TestHistorySelection:
    def test_history_value_source(self):
        engine = FetchEngine(EngineConfig(
            history=HistoryConfig(source=HistorySource.PATTERN, bits=9),
        ))
        engine.pattern_history.update(True)
        assert engine.target_cache_history(0x100) == 1

        engine = FetchEngine(EngineConfig(
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=9),
        ))
        engine.path_history.force_update(0b0100)
        assert engine.target_cache_history(0x100) == 1

        engine = FetchEngine(EngineConfig(
            history=HistoryConfig(source=HistorySource.PATH_PER_ADDRESS,
                                  bits=9),
        ))
        engine.per_address_history.update(0x100, 0b0100)
        assert engine.target_cache_history(0x100) == 1
        assert engine.target_cache_history(0x200) == 0

    def test_two_bit_strategy_plumbing(self, perl_trace):
        default = simulate(perl_trace, EngineConfig())
        two_bit = simulate(
            perl_trace, EngineConfig(btb_strategy=UpdateStrategy.TWO_BIT)
        )
        # rates must differ: the strategies behave differently on this trace
        assert default.indirect_mispredictions != two_bit.indirect_mispredictions
