"""The two-level BTB (``kind="btb2"``) and its backstop trait.

Three layers of contract:

* :class:`TwoLevelBTB` unit semantics — level geometry validation, L1/L2
  probe order, miss-triggered prefetch into the L1, write-through updates,
  and the per-level hit counters;
* registry integration — traits (``predicts_on_btb_miss``,
  ``needs_history=False``), backend chain (streams but never vector),
  labels, and spec round-trip;
* execution-tier identity — the engine's backstop path (consulting the
  target cache on a primary-BTB miss) must be bit-identical between the
  reference engine, the stream kernel, and a process pool, on both a
  capacity-bound server trace and a SPEC-like control.
"""

import pytest

from repro.predictors import (
    EngineConfig,
    TargetCacheConfig,
    build_streams,
    build_target_cache,
    decode_branches,
    simulate,
    simulate_streamed,
    stream_signature,
    streams_supported,
    vector_supported,
)
from repro.predictors import registry
from repro.predictors.btb2 import TwoLevelBTB, _BTBLevel
from repro.workloads import get_trace
from tests.test_streams import assert_identical


@pytest.fixture(scope="module")
def webserver_trace():
    """A small capacity-bound server trace (the backstop actually fires)."""
    return get_trace("webserver_like", n_instructions=60_000, use_cache=False)


def _btb2_config(**kwargs):
    return EngineConfig(target_cache=TargetCacheConfig(kind="btb2", **kwargs))


class TestLevelGeometry:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            _BTBLevel(entries=64, assoc=0)
        with pytest.raises(ValueError):
            _BTBLevel(entries=0, assoc=4)
        with pytest.raises(ValueError):
            _BTBLevel(entries=65, assoc=4)      # not a multiple of assoc
        with pytest.raises(ValueError):
            _BTBLevel(entries=24, assoc=4)      # 6 sets: not a power of two
        with pytest.raises(ValueError):
            TwoLevelBTB(l2_entries=-1)

    def test_fully_associative_and_direct_mapped_extremes(self):
        _BTBLevel(entries=8, assoc=8)   # 1 set
        _BTBLevel(entries=8, assoc=1)   # 8 sets

    def test_level_lru_eviction(self):
        level = _BTBLevel(entries=2, assoc=2)
        level.insert(0, 0x10)
        level.insert(1, 0x20)
        assert level.lookup(0) == 0x10  # refresh: word 1 becomes LRU
        level.insert(2, 0x30)
        assert level.lookup(1) is None
        assert level.lookup(0) == 0x10
        assert level.occupancy() == 2


class TestTwoLevelSemantics:
    def test_cold_miss_returns_none(self):
        assert TwoLevelBTB().predict(0x100, 0) is None

    def test_update_fills_both_levels(self):
        btb2 = TwoLevelBTB(entries=4, assoc=4, l2_entries=8, l2_assoc=8)
        btb2.update(0x100, 0, 0x400)
        assert btb2._l1.occupancy() == 1
        assert btb2._l2.occupancy() == 1
        assert btb2.predict(0x100, 0) == 0x400
        assert btb2.l1_hits == 1

    def test_l2_hit_prefetches_into_l1(self):
        # 1-entry L1: inserting a second pc evicts the first from the L1
        # but not from the L2, so the next probe is an L2 hit that
        # prefetch-fills the L1 — making the probe after that an L1 hit.
        btb2 = TwoLevelBTB(entries=1, assoc=1, l2_entries=8, l2_assoc=8)
        btb2.update(0x100, 0, 0x400)
        btb2.update(0x200, 0, 0x800)    # evicts 0x100 from the L1
        assert btb2.predict(0x100, 0) == 0x400
        assert btb2.l2_hits == 1
        assert btb2.predict(0x100, 0) == 0x400
        assert btb2.l1_hits == 1

    def test_l2_capacity_miss_after_both_evict(self):
        btb2 = TwoLevelBTB(entries=1, assoc=1, l2_entries=1, l2_assoc=1)
        btb2.update(0x100, 0, 0x400)
        btb2.update(0x200, 0, 0x800)    # evicts 0x100 everywhere
        assert btb2.predict(0x100, 0) is None

    def test_zero_l2_entries_disables_backing_level(self):
        btb2 = TwoLevelBTB(entries=1, assoc=1, l2_entries=0)
        assert btb2._l2 is None
        btb2.update(0x100, 0, 0x400)
        btb2.update(0x200, 0, 0x800)
        assert btb2.predict(0x100, 0) is None
        assert btb2.l2_hits == 0

    def test_update_replaces_target_unconditionally(self):
        btb2 = TwoLevelBTB()
        btb2.update(0x100, 0, 0x400)
        btb2.update(0x100, 0, 0x800)
        assert btb2.predict(0x100, 0) == 0x800

    def test_history_is_ignored(self):
        btb2 = TwoLevelBTB()
        btb2.update(0x100, 0x1F, 0x400)
        assert btb2.predict(0x100, 0x2A) == 0x400

    def test_hit_rate_properties_and_reset(self):
        btb2 = TwoLevelBTB(entries=1, assoc=1)
        btb2.update(0x100, 0, 0x400)
        btb2.predict(0x100, 0)
        btb2.update(0x200, 0, 0x800)
        btb2.predict(0x100, 0)          # L2 hit
        assert btb2.lookups == 2
        assert btb2.l1_hit_rate == 0.5
        assert btb2.l2_hit_rate == 0.5
        btb2.reset()
        assert btb2.lookups == 0
        assert btb2.predict(0x100, 0) is None


class TestRegistryIntegration:
    def test_factory_builds_two_level_btb(self):
        built = build_target_cache(TargetCacheConfig(
            kind="btb2", entries=64, assoc=4, l2_entries=2048, l2_assoc=8,
        ))
        assert isinstance(built, TwoLevelBTB)
        assert built._l1.entries == 64
        assert built._l2.entries == 2048

    def test_traits(self):
        traits = registry.traits_for("btb2")
        assert traits.predicts_on_btb_miss
        assert not traits.needs_history
        assert not traits.vectorizable
        assert traits.streams_supported
        assert traits.deterministic

    def test_backstop_kind_is_not_vectorizable(self):
        config = _btb2_config()
        assert streams_supported(config)
        assert not vector_supported(config)

    def test_labels(self):
        assert registry.predictor_label(TargetCacheConfig(
            kind="btb2", entries=64, assoc=4, l2_entries=4096, l2_assoc=8,
        )) == "btb2(64e/4w+4096e/8w)"
        assert registry.predictor_label(TargetCacheConfig(
            kind="btb2", entries=64, assoc=4, l2_entries=0,
        )) == "btb2(64e/4w,no-L2)"

    def test_other_kinds_do_not_backstop(self):
        for kind in ("tagless", "tagged", "cascaded", "ittage", "oracle",
                     "last_target"):
            assert not registry.traits_for(kind).predicts_on_btb_miss, kind


class TestBackstopBehaviour:
    """The engine-level effect of ``predicts_on_btb_miss``."""

    def test_recovers_capacity_mispredicts_on_server_trace(
            self, webserver_trace):
        base = simulate(webserver_trace, EngineConfig())
        btb2 = simulate(webserver_trace, _btb2_config())
        assert btb2.indirect_mispred_rate < base.indirect_mispred_rate
        # everything else the engine does is untouched
        assert btb2.conditional_mispred_rate == base.conditional_mispred_rate
        assert btb2.btb_hits == base.btb_hits

    def test_l2_does_the_recovering(self, webserver_trace):
        """The tiny L1-only degenerate point recovers at most a sliver
        (recently evicted entries); the L2 buys the bulk of the recovery."""
        base = simulate(webserver_trace, EngineConfig())
        no_l2 = simulate(webserver_trace, _btb2_config(l2_entries=0))
        with_l2 = simulate(webserver_trace, _btb2_config())
        assert with_l2.indirect_mispred_rate < no_l2.indirect_mispred_rate
        l1_only_recovery = (base.indirect_mispred_rate
                            - no_l2.indirect_mispred_rate)
        full_recovery = (base.indirect_mispred_rate
                         - with_l2.indirect_mispred_rate)
        assert l1_only_recovery < full_recovery / 2

    def test_neutral_when_footprint_fits_primary_btb(self, perl_trace):
        """SPEC-like control: the primary BTB never capacity-misses, the
        backstop never fires, and the rate equals the baseline exactly."""
        base = simulate(perl_trace, EngineConfig())
        btb2 = simulate(perl_trace, _btb2_config())
        assert btb2.indirect_mispred_rate == base.indirect_mispred_rate


class TestTierIdentity:
    GEOMETRIES = [
        dict(),
        dict(entries=64, assoc=4, l2_entries=2048, l2_assoc=8),
        dict(l2_entries=0),
        dict(entries=256, assoc=8, l2_entries=8192, l2_assoc=8),
    ]

    @pytest.mark.parametrize("trace_name", ["webserver_like", "perl"])
    def test_streams_bit_identical_to_engine(self, trace_name,
                                             webserver_trace, perl_trace):
        trace = (webserver_trace if trace_name == "webserver_like"
                 else perl_trace)
        decoded = decode_branches(trace)
        for geometry in self.GEOMETRIES:
            config = _btb2_config(**geometry)
            streams = build_streams(decoded, stream_signature(config))
            reference = simulate(trace, config, collect_mask=True,
                                 decoded=decoded)
            streamed = simulate_streamed(streams, config, collect_mask=True)
            assert_identical(streamed, reference)

    def test_pool_bit_identical_to_serial(self):
        from repro.runner import SweepCell, run_cells

        cells = [SweepCell("webserver_like", _btb2_config()),
                 SweepCell("webserver_like", EngineConfig())]
        serial = run_cells(cells, jobs=1, trace_length=20_000)
        pooled = run_cells(cells, jobs=2, trace_length=20_000)
        assert serial == pooled
