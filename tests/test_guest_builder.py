"""Unit tests for the program builder (the embedded assembler)."""

import pytest

from repro.guest.builder import BuilderError, ProgramBuilder
from repro.guest.isa import INSTRUCTION_BYTES, Op


def test_forward_label_resolution():
    b = ProgramBuilder()
    b.jmp("end")
    b.label("end")
    b.halt()
    program = b.build()
    assert program.code[0].imm == INSTRUCTION_BYTES


def test_backward_label_resolution():
    b = ProgramBuilder()
    b.label("top")
    b.addi(1, 1, 1)
    b.bne(1, 0, "top")
    b.halt()
    program = b.build()
    assert program.code[1].imm == 0


def test_duplicate_label_rejected():
    b = ProgramBuilder()
    b.label("x")
    with pytest.raises(BuilderError, match="duplicate"):
        b.label("x")


def test_undefined_label_rejected_at_build():
    b = ProgramBuilder()
    b.jmp("nowhere")
    b.halt()
    with pytest.raises(BuilderError, match="undefined label"):
        b.build()


def test_undefined_entry_rejected():
    b = ProgramBuilder()
    b.halt()
    with pytest.raises(BuilderError, match="entry"):
        b.build(entry="missing")


def test_program_must_end_in_control_transfer():
    b = ProgramBuilder()
    b.addi(1, 1, 1)
    with pytest.raises(BuilderError, match="must end"):
        b.build()


def test_data_table_with_labels_builds_jump_table():
    b = ProgramBuilder()
    b.jmp("main")
    b.label("h0")
    b.halt()
    b.label("h1")
    b.halt()
    table = b.data_table(["h0", "h1"])
    b.label("main")
    b.halt()
    program = b.build(entry="main")
    assert program.data[table] == program.address_of("h0")
    assert program.data[table + 4] == program.address_of("h1")


def test_data_words_and_zeros_layout():
    b = ProgramBuilder()
    first = b.data_word(7)
    zeros = b.data_zeros(3)
    after = b.data_word(9)
    b.halt()
    assert zeros == first + 4
    assert after == zeros + 12


def test_data_cursor_matches_next_table_base():
    b = ProgramBuilder()
    cursor = b.data_cursor
    base = b.data_table([1, 2, 3])
    assert base == cursor
    assert b.data_cursor == base + 12


def test_li_with_label_loads_address():
    b = ProgramBuilder()
    b.jmp("main")
    b.label("target")
    b.halt()
    b.label("main")
    b.li(5, "target")
    b.halt()
    program = b.build(entry="main")
    li = program.instruction_at(program.address_of("main"))
    assert li.imm == program.address_of("target")


def test_unique_label_never_collides():
    b = ProgramBuilder()
    first = b.unique_label("work")
    b.label(first)
    second = b.unique_label("work")
    assert first != second


def test_register_validation_on_emit():
    b = ProgramBuilder()
    with pytest.raises(ValueError):
        b.add(99, 1, 2)


def test_explicit_data_address_advances_cursor():
    b = ProgramBuilder()
    b.data_word(5, address=0x20000)
    assert b.data_cursor == 0x20004
    b.halt()


def test_mov_is_add_with_zero():
    b = ProgramBuilder()
    b.mov(3, 7)
    b.halt()
    ins = b.build().code[0]
    assert ins.op is Op.ADD and ins.rs2 == 0
