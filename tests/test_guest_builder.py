"""Unit tests for the program builder (the embedded assembler)."""

import pytest

from repro.guest.builder import BuilderError, ProgramBuilder
from repro.guest.isa import INSTRUCTION_BYTES, Op
from repro.guest.lowering import (
    HOT_MASS,
    MIN_RUN,
    ClusteredLowering,
    LoweringPass,
    get_lowering,
    lowering_names,
    register_lowering,
)
from repro.guest.vm import VM


def test_forward_label_resolution():
    b = ProgramBuilder()
    b.jmp("end")
    b.label("end")
    b.halt()
    program = b.build()
    assert program.code[0].imm == INSTRUCTION_BYTES


def test_backward_label_resolution():
    b = ProgramBuilder()
    b.label("top")
    b.addi(1, 1, 1)
    b.bne(1, 0, "top")
    b.halt()
    program = b.build()
    assert program.code[1].imm == 0


def test_duplicate_label_rejected():
    b = ProgramBuilder()
    b.label("x")
    with pytest.raises(BuilderError, match="duplicate"):
        b.label("x")


def test_undefined_label_rejected_at_build():
    b = ProgramBuilder()
    b.jmp("nowhere")
    b.halt()
    with pytest.raises(BuilderError, match="undefined label"):
        b.build()


def test_undefined_entry_rejected():
    b = ProgramBuilder()
    b.halt()
    with pytest.raises(BuilderError, match="entry"):
        b.build(entry="missing")


def test_program_must_end_in_control_transfer():
    b = ProgramBuilder()
    b.addi(1, 1, 1)
    with pytest.raises(BuilderError, match="must end"):
        b.build()


def test_data_table_with_labels_builds_jump_table():
    b = ProgramBuilder()
    b.jmp("main")
    b.label("h0")
    b.halt()
    b.label("h1")
    b.halt()
    table = b.data_table(["h0", "h1"])
    b.label("main")
    b.halt()
    program = b.build(entry="main")
    assert program.data[table] == program.address_of("h0")
    assert program.data[table + 4] == program.address_of("h1")


def test_data_words_and_zeros_layout():
    b = ProgramBuilder()
    first = b.data_word(7)
    zeros = b.data_zeros(3)
    after = b.data_word(9)
    b.halt()
    assert zeros == first + 4
    assert after == zeros + 12


def test_data_cursor_matches_next_table_base():
    b = ProgramBuilder()
    cursor = b.data_cursor
    base = b.data_table([1, 2, 3])
    assert base == cursor
    assert b.data_cursor == base + 12


def test_li_with_label_loads_address():
    b = ProgramBuilder()
    b.jmp("main")
    b.label("target")
    b.halt()
    b.label("main")
    b.li(5, "target")
    b.halt()
    program = b.build(entry="main")
    li = program.instruction_at(program.address_of("main"))
    assert li.imm == program.address_of("target")


def test_unique_label_never_collides():
    b = ProgramBuilder()
    first = b.unique_label("work")
    b.label(first)
    second = b.unique_label("work")
    assert first != second


def test_register_validation_on_emit():
    b = ProgramBuilder()
    with pytest.raises(ValueError):
        b.add(99, 1, 2)


def test_explicit_data_address_advances_cursor():
    b = ProgramBuilder()
    b.data_word(5, address=0x20000)
    assert b.data_cursor == 0x20004
    b.halt()


def test_mov_is_add_with_zero():
    b = ProgramBuilder()
    b.mov(3, 7)
    b.halt()
    ins = b.build().code[0]
    assert ins.op is Op.ADD and ins.rs2 == 0


# ----------------------------------------------------------------------
# Builder hardening: errors must name the offending label, and a failed
# emit must not corrupt builder state.
# ----------------------------------------------------------------------

def test_duplicate_label_error_names_the_label():
    b = ProgramBuilder()
    b.label("collision_point")
    with pytest.raises(BuilderError, match="collision_point"):
        b.label("collision_point")


def test_undefined_label_error_names_the_label():
    b = ProgramBuilder()
    b.jmp("missing_target")
    b.halt()
    with pytest.raises(BuilderError, match="missing_target"):
        b.build()


def test_failed_emit_leaves_no_dangling_fixup():
    """A rejected branch (bad register) must not record its label fixup.

    Regression test: emit() used to append the fixup before validating
    registers, so a failed emit left a fixup pointing at whatever
    instruction happened to come next.
    """
    b = ProgramBuilder()
    with pytest.raises(ValueError):
        b.beq(99, 0, "never_recorded")  # invalid register
    b.addi(1, 1, 5)  # would be silently rewritten by a dangling fixup
    b.halt()
    program = b.build()  # must not complain about "never_recorded"
    assert program.code[0].imm == 5


# ----------------------------------------------------------------------
# The structured switch construct and its lowerings
# ----------------------------------------------------------------------

def _switch_program(lowering, kind="jump", weights=None, n_cases=6):
    """A tiny dispatch loop: selector cycles 0..n-1, each handler adds a
    distinct amount to r20, loop runs until r10 reaches 3*n."""
    b = ProgramBuilder(lowering=lowering)
    b.jmp("main")
    names = [f"case_{i}" for i in range(n_cases)]
    table = b.switch_table(names)
    b.label("main")
    b.li(10, 0)
    b.label("loop")
    b.li(3, n_cases)
    b.mod(4, 10, 3)
    b.switch(4, table, kind=kind, weights=weights, stem="t_sw")
    # continuation immediately after the construct: call-kind handlers
    # return here; jump-kind handlers branch to the label explicitly
    b.label("after")
    b.addi(10, 10, 1)
    b.li(3, 3 * n_cases)
    b.blt(10, 3, "loop")
    b.halt()
    for i, name in enumerate(names):
        b.label(name)
        b.addi(20, 20, i + 1)
        if kind == "call":
            b.ret()
        else:
            b.jmp("after")
    return b.build(entry="main")


def _final_acc(program):
    vm = VM(program, max_instructions=10_000)
    trace = vm.run()
    assert trace.halted
    return vm.registers[20]


@pytest.mark.parametrize("kind", ["jump", "call"])
def test_switch_lowerings_agree_on_result(kind):
    values = {
        lowering: _final_acc(_switch_program(lowering, kind=kind,
                                             weights=[8, 4, 1, 1, 1, 1]))
        for lowering in lowering_names()
    }
    expected = 3 * sum(range(1, 7))  # 3 full selector cycles
    assert all(value == expected for value in values.values()), values


def test_jump_table_lowering_matches_classic_shape():
    program = _switch_program("jump_table")
    ops = [ins.op for ins in program.code]
    assert Op.JR in ops
    # classic 5-instruction sequence ending in jr
    jr_index = ops.index(Op.JR)
    assert ops[jr_index - 4:jr_index] == [Op.SHLI, Op.LI, Op.ADD, Op.LOAD]


def test_if_tree_lowering_has_no_indirect_jumps():
    program = _switch_program("if_tree")
    assert all(ins.op not in (Op.JR, Op.CALLR) for ins in program.code)


def test_if_tree_call_kind_uses_direct_calls():
    program = _switch_program("if_tree", kind="call")
    ops = [ins.op for ins in program.code]
    assert Op.CALL in ops
    assert Op.CALLR not in ops


def test_switch_default_guard_catches_out_of_range():
    b = ProgramBuilder()
    b.jmp("main")
    table = b.switch_table(["only_case"])
    b.label("main")
    b.li(5, 7)  # out of range selector
    b.switch(5, table, default="fallback", stem="g_sw")
    b.label("only_case")
    b.halt()
    b.label("fallback")
    b.addi(20, 20, 99)
    b.halt()
    program = b.build(entry="main")
    vm = VM(program, max_instructions=100)
    vm.run()
    assert vm.registers[20] == 99


def test_switch_rejects_bad_inputs():
    b = ProgramBuilder()
    table = b.switch_table(["a", "b"])
    with pytest.raises(BuilderError, match="kind"):
        b.switch(5, table, kind="computed_goto")
    with pytest.raises(BuilderError, match="weights"):
        b.switch(5, table, weights=[1.0])
    with pytest.raises(ValueError):
        b.switch(99, table)


def test_switch_table_rejects_bad_inputs():
    b = ProgramBuilder()
    with pytest.raises(BuilderError, match="at least one"):
        b.switch_table([])
    with pytest.raises(BuilderError, match="strided"):
        b.switch_table(["a"], stride=2)


def test_unknown_lowering_rejected_at_switch():
    b = ProgramBuilder(lowering="bogus_pass")
    table = b.switch_table(["a"])
    with pytest.raises(ValueError, match="bogus_pass"):
        b.switch(5, table)


def test_switch_records_sites():
    program_builder = ProgramBuilder()
    table = program_builder.switch_table(["h"])
    program_builder.switch(5, table, stem="rec_sw")
    program_builder.label("h")
    program_builder.halt()
    site = program_builder.switch_sites[0]
    assert site.lowering == "jump_table"
    assert site.start < site.end
    assert len(site.indirect_sites) == 1


# ----------------------------------------------------------------------
# Lowering registry and the clustering algorithm
# ----------------------------------------------------------------------

def test_lowering_registry_contents():
    assert {"jump_table", "if_tree", "clustered"} <= set(lowering_names())
    for name in lowering_names():
        lowering = get_lowering(name)
        assert lowering.label
        assert lowering.spec_example


def test_get_lowering_unknown_lists_available():
    with pytest.raises(ValueError, match="jump_table"):
        get_lowering("nope")


def test_register_lowering_rejects_duplicates():
    with pytest.raises(ValueError, match="jump_table"):
        @register_lowering
        class Duplicate(LoweringPass):
            name = "jump_table"


def test_register_lowering_rejects_empty_name():
    with pytest.raises(ValueError):
        @register_lowering
        class Nameless(LoweringPass):
            pass


def test_clustered_hot_cases_cover_hot_mass():
    weights = [50.0, 30.0, 10.0, 5.0, 3.0, 2.0]
    hot = ClusteredLowering._hot_cases(weights)
    assert sum(weights[i] for i in hot) >= HOT_MASS * sum(weights)
    # minimality: dropping the lightest hot case dips below the threshold
    lightest = min(hot, key=lambda i: (weights[i], -i))
    rest = sum(weights[i] for i in hot if i != lightest)
    assert rest < HOT_MASS * sum(weights)


def test_clustered_pieces_partition_and_respect_min_run():
    n = 10
    hot = frozenset({0, 1, 2, 3, 7})
    pieces = ClusteredLowering._pieces(n, hot)
    covered = []
    for lo, hi in pieces:
        assert lo <= hi
        if hi > lo:  # a table run
            assert hi - lo + 1 >= MIN_RUN
            assert all(i in hot for i in range(lo, hi + 1))
        covered.extend(range(lo, hi + 1))
    assert covered == list(range(n))
