"""Property-based tests (hypothesis) for the core data structures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.isa import BranchKind
from repro.pipeline.caches import DataCache, DataCacheConfig
from repro.predictors.btb import BranchTargetBuffer, UpdateStrategy
from repro.predictors.history import PathHistoryRegister, PatternHistoryRegister
from repro.predictors.indexing import GAgIndex, GAsIndex, GShareIndex
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.target_cache import TaggedIndexing, TaggedTargetCache
from repro.workloads.support import markov_sequence, transition_fraction, zipf_weights

word_addresses = st.integers(min_value=0, max_value=1 << 20).map(lambda w: w * 4)
histories = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestPatternHistoryProperties:
    @given(st.lists(st.booleans(), max_size=64), st.integers(1, 16))
    def test_value_is_last_n_outcomes(self, outcomes, bits):
        register = PatternHistoryRegister(bits)
        for outcome in outcomes:
            register.update(outcome)
        expected = 0
        for outcome in outcomes[-bits:]:
            expected = (expected << 1) | int(outcome)
        assert register.value == expected

    @given(st.lists(st.booleans(), max_size=64), st.integers(1, 16))
    def test_value_always_within_width(self, outcomes, bits):
        register = PatternHistoryRegister(bits)
        for outcome in outcomes:
            register.update(outcome)
        assert 0 <= register.value < (1 << bits)


class TestPathHistoryProperties:
    @given(st.lists(word_addresses, max_size=40),
           st.integers(1, 4), st.integers(0, 6))
    def test_reconstructible_from_last_fragments(self, targets, bpt, address_bit):
        bits = 12
        register = PathHistoryRegister(bits=bits, bits_per_target=bpt,
                                       address_bit=address_bit)
        for target in targets:
            register.force_update(target)
        expected = 0
        mask = (1 << bpt) - 1
        for target in targets:
            expected = ((expected << bpt) | ((target >> address_bit) & mask))
        expected &= (1 << bits) - 1
        assert register.value == expected


class TestIndexSchemeProperties:
    @given(word_addresses, histories)
    def test_indices_in_range(self, pc, history):
        for scheme in (GAgIndex(9), GAsIndex(8, 1), GAsIndex(7, 2),
                       GShareIndex(9)):
            index = scheme.index(pc, history)
            assert 0 <= index < scheme.table_size

    @given(word_addresses, word_addresses, histories)
    def test_gag_is_address_blind(self, pc1, pc2, history):
        scheme = GAgIndex(9)
        assert scheme.index(pc1, history) == scheme.index(pc2, history)


class TestTaggedCacheProperties:
    @given(st.lists(st.tuples(word_addresses, histories, word_addresses),
                    min_size=1, max_size=200),
           st.sampled_from([1, 2, 4, 8]),
           st.sampled_from(list(TaggedIndexing)))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, ops, assoc, indexing):
        cache = TaggedTargetCache(entries=16, assoc=assoc, indexing=indexing)
        for pc, history, target in ops:
            cache.update(pc, history, target)
        assert cache.occupancy() <= cache.entries
        for bucket in cache._sets:
            assert len(bucket) <= assoc

    @given(word_addresses, histories, word_addresses,
           st.sampled_from(list(TaggedIndexing)))
    def test_predict_after_update_returns_target(self, pc, history, target,
                                                 indexing):
        cache = TaggedTargetCache(entries=64, assoc=4, indexing=indexing)
        cache.update(pc, history, target)
        assert cache.predict(pc, history) == target

    @given(st.lists(st.tuples(word_addresses, histories, word_addresses),
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_prediction_is_some_previous_target_or_none(self, ops):
        """A target cache can only return targets it has been taught."""
        cache = TaggedTargetCache(entries=16, assoc=2)
        taught = set()
        for pc, history, target in ops:
            guess = cache.predict(pc, history)
            assert guess is None or guess in taught
            cache.update(pc, history, target)
            taught.add(target)


class TestBTBProperties:
    @given(st.lists(st.tuples(word_addresses, word_addresses), min_size=1,
                    max_size=300),
           st.sampled_from(list(UpdateStrategy)))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded_and_lookup_consistent(self, ops, strategy):
        btb = BranchTargetBuffer(sets=8, ways=2, strategy=strategy)
        for pc, target in ops:
            btb.update(pc, BranchKind.IND_JUMP, target,
                       predicted_target_correct=False)
        assert btb.occupancy() <= 16
        # the most recently updated pc is always resident
        last_pc = ops[-1][0]
        assert btb.lookup(last_pc) is not None


class TestRASProperties:
    @given(st.lists(word_addresses, max_size=100), st.integers(1, 16))
    def test_depth_bound_and_lifo_suffix(self, pushes, depth):
        ras = ReturnAddressStack(depth=depth)
        for address in pushes:
            ras.push(address)
        assert len(ras) <= depth
        expected = list(reversed(pushes[-depth:]))
        popped = [ras.pop() for _ in range(len(expected))]
        assert popped == expected


class TestDataCacheProperties:
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_immediate_reaccess_always_hits(self, addresses):
        cache = DataCache(DataCacheConfig(size_bytes=1024, assoc=2,
                                          line_bytes=32))
        for address in addresses:
            cache.access(address)
            assert cache.access(address) is True

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_miss_count_bounded_by_accesses(self, addresses):
        cache = DataCache()
        for address in addresses:
            cache.access(address)
        assert 0 < cache.accesses
        assert 0 <= cache.misses <= cache.accesses


class TestWorkloadSupportProperties:
    @given(st.integers(2, 20), st.floats(0.0, 0.95), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_markov_self_bias_controls_transitions(self, k, self_bias, seed):
        rng = random.Random(seed)
        sequence = markov_sequence(rng, 600, k, self_bias=self_bias)
        assert all(0 <= value < k for value in sequence)
        observed = transition_fraction(sequence)
        expected = (1 - self_bias) * (1 - 1 / k)
        assert abs(observed - expected) < 0.12

    @given(st.integers(1, 40), st.floats(0.1, 2.0))
    def test_zipf_weights_decreasing_and_positive(self, k, s):
        weights = zipf_weights(k, s)
        assert len(weights) == k
        assert all(w > 0 for w in weights)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    @given(st.integers(1, 40), st.floats(0.1, 2.0))
    def test_zipf_weights_normalize_to_distribution(self, k, s):
        weights = zipf_weights(k, s, normalize=True)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(0 < w <= 1 for w in weights)
        # normalization preserves the rank ordering and the ratios
        raw = zipf_weights(k, s)
        for a, b in zip(weights, raw):
            assert abs(a * sum(raw) - b) < 1e-9 * max(1.0, sum(raw))

    @given(st.integers(-3, 0))
    def test_zipf_weights_reject_nonpositive_k(self, k):
        with pytest.raises(ValueError):
            zipf_weights(k)

    @given(st.integers(2, 12), st.floats(0.0, 0.9), st.integers(0, 10_000),
           st.integers(0, 300))
    @settings(max_examples=50, deadline=None)
    def test_markov_sequence_is_stochastic(self, k, self_bias, seed, n):
        """Every draw lands in [0, k): the implied transition rows are
        proper distributions (no leakage outside the category set), and the
        sequence has exactly the requested length."""
        rng = random.Random(seed)
        sequence = markov_sequence(rng, n, k, self_bias=self_bias)
        assert len(sequence) == n
        assert all(0 <= value < k for value in sequence)

    @given(st.integers(2, 12), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_markov_sequence_respects_zero_weight_categories(self, k, seed):
        """Categories with zero weight are unreachable except via the
        self-transition, which only re-emits an already-drawn category."""
        rng = random.Random(seed)
        weights = [1.0] * k
        weights[-1] = 0.0
        sequence = markov_sequence(rng, 400, k, self_bias=0.3, weights=weights)
        assert all(value != k - 1 for value in sequence)

    @given(st.integers(-3, 0), st.integers(2, 8))
    def test_markov_sequence_rejects_nonpositive_k(self, k, n):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            markov_sequence(rng, n, k)
