"""Unit tests for the guest ISA definitions."""

import pytest

from repro.guest.isa import (
    INSTRUCTION_BYTES,
    NUM_REGISTERS,
    OP_BRANCH_KIND,
    OP_CLASS,
    BranchKind,
    GuestProgram,
    InstrClass,
    Instruction,
    Op,
    classify_target,
    validate_register,
)


class TestBranchKind:
    def test_not_branch_is_not_a_branch(self):
        assert not BranchKind.NOT_BRANCH.is_branch

    def test_every_other_kind_is_a_branch(self):
        for kind in BranchKind:
            if kind is not BranchKind.NOT_BRANCH:
                assert kind.is_branch

    def test_indirect_kinds(self):
        assert BranchKind.IND_JUMP.is_indirect
        assert BranchKind.CALL_INDIRECT.is_indirect
        assert BranchKind.RETURN.is_indirect
        assert not BranchKind.COND_DIRECT.is_indirect
        assert not BranchKind.UNCOND_DIRECT.is_indirect
        assert not BranchKind.CALL_DIRECT.is_indirect

    def test_target_cache_excludes_returns(self):
        """Paper footnote 1: returns are handled by the RAS, not the TC."""
        assert BranchKind.IND_JUMP.is_predicted_by_target_cache
        assert BranchKind.CALL_INDIRECT.is_predicted_by_target_cache
        assert not BranchKind.RETURN.is_predicted_by_target_cache
        assert not BranchKind.COND_DIRECT.is_predicted_by_target_cache

    def test_call_kinds(self):
        assert BranchKind.CALL_DIRECT.is_call
        assert BranchKind.CALL_INDIRECT.is_call
        assert not BranchKind.RETURN.is_call

    def test_redirects_stream(self):
        assert BranchKind.COND_DIRECT.redirects_stream
        assert BranchKind.RETURN.redirects_stream
        assert not BranchKind.NOT_BRANCH.redirects_stream


class TestOpcodeTables:
    def test_every_opcode_has_a_class(self):
        for op in Op:
            assert op in OP_CLASS

    def test_branch_opcodes_have_branch_class(self):
        for op, kind in OP_BRANCH_KIND.items():
            assert OP_CLASS[op] is InstrClass.BRANCH
            assert kind.is_branch

    def test_non_branch_opcodes_have_no_kind(self):
        assert Op.ADD not in OP_BRANCH_KIND
        assert Op.LOAD not in OP_BRANCH_KIND

    def test_latency_classes_cover_paper_table3(self):
        names = {c.name for c in InstrClass}
        assert names == {"INT", "FP_ADD", "MUL", "DIV", "LOAD", "STORE",
                         "BITFIELD", "BRANCH"}


class TestInstruction:
    def test_derived_properties(self):
        ins = Instruction(op=Op.JR, rs1=5)
        assert ins.instr_class is InstrClass.BRANCH
        assert ins.branch_kind is BranchKind.IND_JUMP

    def test_alu_instruction(self):
        ins = Instruction(op=Op.MUL, rd=1, rs1=2, rs2=3)
        assert ins.instr_class is InstrClass.MUL
        assert ins.branch_kind is BranchKind.NOT_BRANCH


class TestGuestProgram:
    def _program(self):
        code = [
            Instruction(op=Op.LI, rd=1, imm=3),
            Instruction(op=Op.JR, rs1=1),
            Instruction(op=Op.CALLR, rs1=1),
            Instruction(op=Op.RET),
            Instruction(op=Op.HALT),
        ]
        return GuestProgram(code=code, labels={"main": 0})

    def test_instruction_at(self):
        program = self._program()
        assert program.instruction_at(4).op is Op.JR

    def test_instruction_at_rejects_misaligned(self):
        with pytest.raises(ValueError, match="misaligned"):
            self._program().instruction_at(5)

    def test_instruction_at_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            self._program().instruction_at(400)

    def test_static_indirect_jumps_excludes_returns(self):
        program = self._program()
        # JR at 4 and CALLR at 8 qualify; RET at 12 does not
        assert program.static_indirect_jumps() == [4, 8]

    def test_address_of(self):
        assert self._program().address_of("main") == 0


class TestHelpers:
    def test_validate_register_accepts_range(self):
        assert validate_register(0) == 0
        assert validate_register(NUM_REGISTERS - 1) == NUM_REGISTERS - 1

    def test_validate_register_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_register(NUM_REGISTERS)
        with pytest.raises(ValueError):
            validate_register(-1)

    def test_validate_register_allows_unused_sentinel(self):
        assert validate_register(-1, allow_unused=True) == -1

    def test_classify_target(self):
        forward, distance = classify_target(0, 2 * INSTRUCTION_BYTES)
        assert forward and distance == 1
        backward, distance = classify_target(8, 0)
        assert not backward and distance == -3
