"""Unit tests for the ITTAGE-lite extension predictor."""

import pytest

from repro.predictors import EngineConfig, HistoryConfig, HistorySource, simulate
from repro.predictors.history import PathFilter
from repro.predictors.target_cache import (
    ITTageLite,
    TargetCacheConfig,
    build_target_cache,
    fold_history,
)


class TestFoldHistory:
    def test_short_history_passes_through(self):
        assert fold_history(0b101, length=8, bits=8) == 0b101

    def test_folding_xors_segments(self):
        # 12 bits folded into 4: segments 0xA, 0xB, 0xC -> A^B^C
        history = (0xC << 8) | (0xB << 4) | 0xA
        assert fold_history(history, length=12, bits=4) == 0xA ^ 0xB ^ 0xC

    def test_only_youngest_length_bits_used(self):
        assert fold_history(0xFF00 | 0b1010, length=4, bits=4) == 0b1010

    def test_result_in_range(self):
        for history in (0, 1, 0xDEADBEEF, (1 << 60) - 1):
            assert 0 <= fold_history(history, 32, 7) < 128

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            fold_history(1, 4, 0)


class TestITTageLite:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ITTageLite(lengths=())
        with pytest.raises(ValueError):
            ITTageLite(lengths=(8, 4))

    def test_base_predictor_learns_last_target(self):
        predictor = ITTageLite()
        predictor.update(0x100, 0, 0x400)
        assert predictor.predict(0x100, 12345) == 0x400

    def test_unknown_jump_predicts_none(self):
        assert ITTageLite().predict(0x100, 0) is None

    def test_allocation_on_misprediction(self):
        predictor = ITTageLite()
        predictor.update(0x100, 0b0001, 0x400)
        # same pc, different history, different target: base mispredicts,
        # so a tagged component must be allocated
        predictor.update(0x100, 0b1110, 0x800)
        assert predictor.predict(0x100, 0b1110) == 0x800

    def test_history_disambiguates_targets(self):
        predictor = ITTageLite()
        pairs = [(0b000011, 0x400), (0b110000, 0x800)]
        for _ in range(6):
            for history, target in pairs:
                predictor.update(0x100, history, target)
        assert predictor.predict(0x100, 0b000011) == 0x400
        assert predictor.predict(0x100, 0b110000) == 0x800

    def test_longest_history_provider_wins(self):
        predictor = ITTageLite(lengths=(4, 16))
        # two histories identical in the youngest 4 bits, distinct above
        short_ctx = 0b0000_1111
        long_ctx = 0b1111_1111
        for _ in range(8):
            predictor.update(0x100, short_ctx, 0x400)
            predictor.update(0x100, long_ctx, 0x800)
        assert predictor.predict(0x100, short_ctx) == 0x400
        assert predictor.predict(0x100, long_ctx) == 0x800

    def test_recovers_dominant_target_after_transient(self):
        """A single contrary outcome allocates a longer-history entry (as
        real ITTAGE does), but reconfirmation re-establishes the dominant
        target as the prediction."""
        predictor = ITTageLite()
        for _ in range(6):
            predictor.update(0x100, 0b0101, 0x400)
        predictor.update(0x100, 0b0101, 0x800)  # transient
        for _ in range(3):
            predictor.update(0x100, 0b0101, 0x400)
        assert predictor.predict(0x100, 0b0101) == 0x400

    def test_confident_provider_keeps_target_through_one_flip(self):
        """The provider entry itself is hysteretic: its stored target
        survives a single contrary update (confidence decrements first)."""
        predictor = ITTageLite()
        predictor.update(0x100, 0b0001, 0x400)
        predictor.update(0x100, 0b1000, 0x800)  # allocates a component
        # reinforce the allocated entry
        for _ in range(4):
            predictor.update(0x100, 0b1000, 0x800)
        component, entry = predictor._lookup(0x100, 0b1000)
        assert entry is not None and entry.target == 0x800
        confident = entry.confidence
        predictor.update(0x100, 0b1000, 0xC00)  # one contrary outcome
        assert entry.target == 0x800             # survived
        assert entry.confidence < confident

    def test_reset(self):
        predictor = ITTageLite()
        predictor.update(0x100, 0, 0x400)
        predictor.reset()
        assert predictor.predict(0x100, 0) is None

    def test_total_entries_budget(self):
        predictor = ITTageLite(table_bits=7, lengths=(4, 8, 16, 32))
        assert predictor.total_entries == 4 * 128

    def test_factory(self):
        predictor = build_target_cache(
            TargetCacheConfig(kind="ittage", entries=128)
        )
        assert isinstance(predictor, ITTageLite)


class TestITTageOnWorkloads:
    def _ittage_engine(self):
        return EngineConfig(
            target_cache=TargetCacheConfig(kind="ittage", entries=128),
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=48,
                                  path_filter=PathFilter.CONTROL),
        )

    def test_beats_btb_on_perl(self, perl_trace):
        base = simulate(perl_trace, EngineConfig()).indirect_mispred_rate
        ittage = simulate(perl_trace,
                          self._ittage_engine()).indirect_mispred_rate
        assert ittage < base * 0.3

    def test_beats_single_history_target_cache_on_perl(self, perl_trace):
        """The historical progression: geometric history lengths dominate
        one fixed-length history."""
        from repro.experiments.configs import path_scheme_history, tagless_engine

        classic = simulate(
            perl_trace, tagless_engine(history=path_scheme_history("ind jmp"))
        ).indirect_mispred_rate
        ittage = simulate(perl_trace,
                          self._ittage_engine()).indirect_mispred_rate
        assert ittage < classic
