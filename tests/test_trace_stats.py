"""Unit tests for trace statistics (Table 1 / Figures 1-8 machinery)."""

import pytest

from repro.guest.builder import ProgramBuilder
from repro.guest.vm import run_program
from repro.trace.stats import (
    branch_mix,
    indirect_target_histogram,
    polymorphic_fraction,
    target_profile,
    transition_rate,
)
from repro.trace.trace import Trace


def _dispatch_trace(token_sequence, n_handlers=4, repeats=10):
    """A loop dispatching through `token_sequence` `repeats` times."""
    b = ProgramBuilder()
    b.jmp("main")
    handlers = [f"h{i}" for i in range(n_handlers)]
    table = b.data_table(handlers)
    script = b.data_table(list(token_sequence) * repeats)
    for name in handlers:
        b.label(name)
        b.addi(20, 20, 1)
        b.jmp("next")
    b.label("main")
    b.li(10, 0)
    b.li(11, len(token_sequence) * repeats)
    b.label("loop")
    b.shli(1, 10, 2)
    b.li(2, script)
    b.add(1, 1, 2)
    b.load(3, 1)
    b.shli(1, 3, 2)
    b.li(2, table)
    b.add(1, 1, 2)
    b.load(4, 1)
    b.jr(4)
    b.label("next")
    b.addi(10, 10, 1)
    b.blt(10, 11, "loop")
    b.halt()
    return Trace.from_raw(run_program(b.build(entry="main")))


class TestBranchMix:
    def test_counts(self):
        trace = _dispatch_trace([0, 1, 2, 3])
        mix = branch_mix(trace)
        assert mix.instructions == len(trace)
        assert mix.indirect_jumps == 40
        assert mix.conditional_branches == 40
        assert mix.branches == mix.conditional_branches + mix.indirect_jumps + 40  # + handler jmps
        assert 0 < mix.branch_fraction < 1
        assert mix.indirect_fraction == pytest.approx(40 / len(trace))

    def test_empty_trace(self):
        mix = branch_mix(Trace.empty())
        assert mix.instructions == 0
        assert mix.branch_fraction == 0.0


class TestTargetProfile:
    def test_distinct_targets_counted(self):
        trace = _dispatch_trace([0, 1, 2, 3])
        profile = target_profile(trace)
        assert profile.static_jumps == 1
        assert profile.max_targets() == 4
        assert profile.dynamic_jumps == 40

    def test_monomorphic_jump(self):
        trace = _dispatch_trace([2, 2, 2])
        profile = target_profile(trace)
        assert profile.max_targets() == 1


class TestHistogram:
    def test_static_weighting_sums_to_100(self):
        trace = _dispatch_trace([0, 1, 2, 3])
        histogram = indirect_target_histogram(trace)
        assert sum(histogram.values()) == pytest.approx(100.0)
        assert histogram[4] == pytest.approx(100.0)

    def test_dynamic_weighting(self):
        trace = _dispatch_trace([0, 1])
        histogram = indirect_target_histogram(trace, weight="dynamic")
        assert histogram[2] == pytest.approx(100.0)

    def test_cap_bucket_aggregates(self):
        trace = _dispatch_trace(list(range(4)), n_handlers=4)
        histogram = indirect_target_histogram(trace, cap=3)
        assert histogram[3] == pytest.approx(100.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            indirect_target_histogram(Trace.empty(), weight="bogus")

    def test_no_indirect_jumps_gives_zero_histogram(self):
        b = ProgramBuilder()
        b.li(1, 1)
        b.halt()
        trace = Trace.from_raw(run_program(b.build()))
        histogram = indirect_target_histogram(trace)
        assert sum(histogram.values()) == 0.0


class TestPolymorphismMetrics:
    def test_polymorphic_fraction(self):
        trace = _dispatch_trace([0, 1, 2, 3])
        assert polymorphic_fraction(trace) == 1.0

    def test_monomorphic_fraction(self):
        trace = _dispatch_trace([1, 1, 1])
        assert polymorphic_fraction(trace) == 0.0

    def test_transition_rate_alternating(self):
        trace = _dispatch_trace([0, 1])
        # alternating targets: every non-first execution differs
        assert transition_rate(trace) == pytest.approx(1.0)

    def test_transition_rate_constant(self):
        trace = _dispatch_trace([3, 3, 3, 3])
        assert transition_rate(trace) == 0.0

    def test_transition_rate_approximates_btb_mispredicts(self, perl_trace):
        """The transition rate lower-bounds the BTB misprediction rate and
        should land close to it for these working-set sizes."""
        from repro.predictors import EngineConfig, simulate

        rate = transition_rate(perl_trace)
        btb = simulate(perl_trace, EngineConfig()).indirect_mispred_rate
        assert btb >= rate - 0.02
        assert abs(btb - rate) < 0.10
