"""The interprocedural layer: symbol index, call graph, and the three
checkers built on it (worker-safety, transitive-purity, trait-contract),
plus the stale-suppression audit."""

import pytest

from repro.analysis import (
    Project,
    SourceFile,
    StaleSuppressionChecker,
    TraitContractChecker,
    TransitivePurityChecker,
    WorkerSafetyChecker,
    run_lint,
)
from repro.analysis.base import Finding
from repro.analysis.callgraph import CallGraph, project_callgraph
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.symbols import SymbolIndex, module_name
from repro.predictors import PredictorTraits, TargetCacheConfig, registry
from repro.predictors.target_cache.base import TargetPredictor


@pytest.fixture(scope="module")
def real_project():
    return Project.load()


@pytest.fixture(scope="module")
def real_graph(real_project):
    return project_callgraph(real_project)


def _project(*files):
    return Project(
        root=None,
        files=[SourceFile.from_text(rel, text) for rel, text in files],
    )


# ----------------------------------------------------------------------
# Symbol index
# ----------------------------------------------------------------------
class TestSymbolIndex:
    def test_module_name_mapping(self):
        assert module_name("runner/pool.py") == "repro.runner.pool"
        assert module_name("__init__.py") == "repro"
        assert module_name("predictors/__init__.py") == "repro.predictors"

    def test_real_tree_functions_indexed(self, real_graph):
        index = real_graph.index
        assert index.function("repro.runner.pool._init_worker") is not None
        assert index.function("repro.predictors.vector.simulate_vector") \
            is not None

    def test_reexport_resolution(self, real_graph):
        # ``from repro.predictors import simulate_vector`` must land on
        # the defining module through the package __init__.
        index = real_graph.index
        assert index.resolve_export("repro.predictors", "simulate_vector") \
            == "repro.predictors.vector.simulate_vector"

    def test_nested_function_qualnames(self):
        project = _project(
            ("runner/m.py", "def outer():\n    def inner():\n        pass\n"
                            "    inner()\n"),
        )
        index = SymbolIndex.build(project)
        assert index.function("repro.runner.m.outer.inner") is not None

    def test_import_time_opens_recorded(self):
        project = _project(
            ("runner/m.py", "handle = open('x.txt')\n\n"
                            "def f():\n    open('inside.txt')\n"),
        )
        index = SymbolIndex.build(project)
        info = index.modules["repro.runner.m"]
        assert info.import_time_opens == [1]


# ----------------------------------------------------------------------
# Call graph over the real tree (acceptance-criteria edges)
# ----------------------------------------------------------------------
class TestRealCallGraph:
    def test_worker_initializer_calls_load_plugins(self, real_graph):
        assert real_graph.has_edge(
            "repro.runner.pool._init_worker",
            "repro.predictors.registry.load_plugins",
        )

    def test_run_cells_reaches_vector_kernel(self, real_graph):
        path = real_graph.path(
            "repro.runner.pool.run_cells",
            "repro.predictors.vector.simulate_vector",
        )
        assert path is not None
        assert path[0] == "repro.runner.pool.run_cells"
        assert path[-1] == "repro.predictors.vector.simulate_vector"

    def test_factory_fanout_covers_registered_builders(self, real_graph):
        # Registry fan-out: ``reg.factory(cfg)`` could build any kind.
        assert len(real_graph.factory_targets) >= 6
        assert all(
            target in real_graph.index.functions
            for target in real_graph.factory_targets
        )

    def test_worker_closure_includes_obs_install(self, real_graph):
        reachable = real_graph.reachable(WorkerSafetyChecker().entry_points)
        assert "repro.obs.bootstrap.install" in reachable

    def test_self_method_edges(self):
        project = _project(
            ("runner/m.py",
             "class C:\n"
             "    def a(self):\n        self.b()\n"
             "    def b(self):\n        pass\n"),
        )
        graph = CallGraph.build(project)
        assert graph.has_edge("repro.runner.m.C.a", "repro.runner.m.C.b")

    def test_constructor_edge_includes_init(self):
        project = _project(
            ("runner/m.py",
             "class C:\n"
             "    def __init__(self):\n        helper()\n"
             "def helper():\n    pass\n"
             "def make():\n    return C()\n"),
        )
        graph = CallGraph.build(project)
        assert graph.has_edge("repro.runner.m.make", "repro.runner.m.C")
        assert graph.has_edge(
            "repro.runner.m.make", "repro.runner.m.C.__init__"
        )

    def test_parents_chain_materialises(self):
        project = _project(
            ("runner/m.py",
             "def a():\n    b()\n"
             "def b():\n    c()\n"
             "def c():\n    pass\n"),
        )
        graph = CallGraph.build(project)
        parents = graph.parents_from(["repro.runner.m.a"])
        chain = CallGraph.chain_to(parents, "repro.runner.m.c")
        assert chain == [
            "repro.runner.m.a", "repro.runner.m.b", "repro.runner.m.c",
        ]


# ----------------------------------------------------------------------
# worker-safety
# ----------------------------------------------------------------------
_POOL_HEADER = (
    "import os\n"
    "_STATE = {{}}\n"
    "def _init_worker():\n"
    "    {init_body}\n"
    "def _run_chunk():\n"
    "    {chunk_body}\n"
)


def _worker_project(init_body="pass", chunk_body="pass", extra=()):
    text = _POOL_HEADER.format(init_body=init_body, chunk_body=chunk_body)
    return _project(("runner/pool.py", text), *extra)


class TestWorkerSafety:
    def _run(self, project):
        return WorkerSafetyChecker().run(project)

    def test_clean_worker_has_no_findings(self):
        assert self._run(_worker_project()) == []

    def test_global_statement_flagged(self):
        findings = self._run(_worker_project(init_body="global _STATE"))
        assert [f.rule for f in findings] == ["worker-global-write"]

    def test_module_state_mutation_through_alias_flagged(self):
        findings = self._run(
            _worker_project(
                chunk_body="state = _STATE; state['k'] = 1",
            )
        )
        assert [f.rule for f in findings] == ["worker-global-write"]

    def test_environ_write_flagged(self):
        findings = self._run(
            _worker_project(init_body="os.environ['K'] = 'v'")
        )
        assert [f.rule for f in findings] == ["worker-env-mutate"]

    def test_unseeded_random_in_transitive_helper_flagged(self):
        # The helper lives in another module entirely; only the call
        # graph connects it to the worker.
        project = _project(
            ("runner/pool.py",
             "from repro.runner.util import helper\n"
             "def _init_worker():\n    pass\n"
             "def _run_chunk():\n    helper()\n"),
            ("runner/util.py",
             "import random\n"
             "def helper():\n    return random.random()\n"),
        )
        findings = self._run(project)
        assert [(f.rule, f.path) for f in findings] == [
            ("worker-unseeded-random", "runner/util.py"),
        ]

    def test_import_time_open_flagged(self):
        project = _project(
            ("runner/pool.py",
             "from repro.runner.util import helper\n"
             "def _init_worker():\n    helper()\n"
             "def _run_chunk():\n    pass\n"),
            ("runner/util.py",
             "log = open('log.txt')\n"
             "def helper():\n    pass\n"),
        )
        findings = self._run(project)
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("worker-import-open", "runner/util.py", 1),
        ]

    def test_real_tree_is_clean_after_suppression(self, real_project):
        report = run_lint(
            project=real_project, only=["worker-safety"],
        )
        assert report.clean, report.to_text()


# ----------------------------------------------------------------------
# transitive-purity
# ----------------------------------------------------------------------
class TestTransitivePurity:
    def _run(self, project):
        return TransitivePurityChecker().run(project)

    def test_clean_kernel_has_no_findings(self):
        project = _project(
            ("predictors/vector.py",
             "def simulate_vector(cfg):\n    return 0\n"),
        )
        assert self._run(project) == []

    def test_seed_guard_deletion_deep_in_helper_is_caught(self):
        # The lexical determinism pass scopes to predictors/, pipeline/,
        # runner/, obs/ — a helper in workloads/ is invisible to it.
        # Transitive purity follows the call chain instead.
        project = _project(
            ("predictors/vector.py",
             "from repro.workloads.util import jitter\n"
             "def simulate_vector(cfg):\n    return jitter()\n"),
            ("workloads/util.py",
             "import random\n"
             "def jitter():\n    return random.random()\n"),
        )
        lexical = DeterminismChecker().run(project)
        assert lexical == []
        findings = self._run(project)
        assert [(f.rule, f.path) for f in findings] == [
            ("purity-transitive", "workloads/util.py"),
        ]
        assert "det-unseeded-random" in findings[0].message
        assert "repro.predictors.vector.simulate_vector" \
            in findings[0].message

    def test_each_site_reported_once(self):
        # Two kernel roots reach the same impure helper: one finding.
        project = _project(
            ("predictors/engine.py",
             "from repro.workloads.util import jitter\n"
             "def simulate(cfg):\n    return jitter()\n"),
            ("predictors/vector.py",
             "from repro.workloads.util import jitter\n"
             "def simulate_vector(cfg):\n    return jitter()\n"),
            ("workloads/util.py",
             "import random\n"
             "def jitter():\n    return random.random()\n"),
        )
        findings = self._run(project)
        assert len(findings) == 1

    def test_real_tree_is_clean(self, real_project):
        report = run_lint(project=real_project, only=["transitive-purity"])
        assert report.clean, report.to_text()


# ----------------------------------------------------------------------
# trait-contract
# ----------------------------------------------------------------------
class _SchemelessPredictor(TargetPredictor):
    """Claims vectorizable+needs_history but exposes no IndexScheme."""

    def predict(self, pc, history):
        return None

    def update(self, pc, history, target):
        pass

    def reset(self):
        pass


class TestTraitContract:
    def _run(self, project):
        return TraitContractChecker().run(project)

    def test_real_registry_is_clean(self, real_project):
        report = run_lint(project=real_project, only=["trait-contract"])
        assert report.clean, report.to_text()

    def test_vector_dispatch_claim_without_scheme_flagged(self, real_project):
        kind = "_test_schemeless"
        registry.register(
            kind,
            factory=lambda config: _SchemelessPredictor(),
            traits=PredictorTraits(
                description="broken vector claim",
                vectorizable=True,
                needs_history=True,
            ),
            provides=(_SchemelessPredictor,),
            spec_examples=(TargetCacheConfig(kind=kind),),
        )
        try:
            rules = {f.rule for f in self._run(real_project)}
        finally:
            registry.unregister(kind)
        assert "trait-vector-dispatch" in rules

    def test_vectorizable_without_streams_flagged(self, real_project):
        kind = "_test_no_streams"
        registry.register(
            kind,
            factory=lambda config: _SchemelessPredictor(),
            traits=PredictorTraits(
                description="vector claim the backend chain drops",
                vectorizable=True,
                streams_supported=False,
            ),
            provides=(_SchemelessPredictor,),
        )
        try:
            rules = {f.rule for f in self._run(real_project)}
        finally:
            registry.unregister(kind)
        assert "trait-backend-chain" in rules

    def test_factory_provides_mismatch_flagged(self, real_project):
        kind = "_test_liar"
        registry.register(
            kind,
            factory=lambda config: _SchemelessPredictor(),
            traits=PredictorTraits(description="provides tuple lies"),
            # Claims to build the real tagless predictor class.
            provides=(
                type(
                    registry.build_target_cache(
                        TargetCacheConfig(kind="tagless")
                    )
                ),
            ),
            spec_examples=(TargetCacheConfig(kind=kind),),
        )
        try:
            rules = {f.rule for f in self._run(real_project)}
        finally:
            registry.unregister(kind)
        assert "trait-factory-provides" in rules

    def test_raising_factory_flagged(self, real_project):
        kind = "_test_raiser"

        def factory(config):
            raise RuntimeError("boom")

        registry.register(
            kind,
            factory=factory,
            traits=PredictorTraits(description="factory raises"),
            provides=(_SchemelessPredictor,),
            spec_examples=(TargetCacheConfig(kind=kind),),
        )
        try:
            findings = self._run(real_project)
        finally:
            registry.unregister(kind)
        assert any(
            f.rule == "trait-factory-provides" and "boom" in f.message
            for f in findings
        )


# ----------------------------------------------------------------------
# stale-suppression
# ----------------------------------------------------------------------
class _StubChecker:
    name = "stub"
    description = "emits fixed findings"

    def __init__(self, findings):
        self._findings = findings

    def run(self, project):
        return list(self._findings)


class TestStaleSuppression:
    def test_live_suppression_is_not_flagged(self):
        project = _project(
            ("m.py", "x = 1  # repro-lint: ignore[stub-rule]\n"),
        )
        stub = _StubChecker([Finding("stub-rule", "m.py", 1, "boom")])
        report = run_lint(
            project=project,
            checkers=[stub, StaleSuppressionChecker()],
        )
        assert report.clean
        assert report.suppressed == 1

    def test_stale_rule_name_is_flagged(self):
        project = _project(
            ("m.py", "x = 1  # repro-lint: ignore[stub-rule]\n"),
        )
        stub = _StubChecker([])
        report = run_lint(
            project=project,
            checkers=[stub, StaleSuppressionChecker()],
        )
        assert [f.rule for f in report.findings] == ["stale-suppression"]
        assert "stub-rule" in report.findings[0].message

    def test_blanket_ignore_with_no_finding_is_flagged(self):
        project = _project(("m.py", "x = 1  # repro-lint: ignore\n"))
        report = run_lint(
            project=project,
            checkers=[_StubChecker([]), StaleSuppressionChecker()],
        )
        assert [f.rule for f in report.findings] == ["stale-suppression"]

    def test_audit_runs_even_under_only_selection(self):
        # --only stale-suppression must still execute the peers to know
        # what fires; the peers' own findings stay unreported.
        project = _project(
            ("m.py",
             "x = 1  # repro-lint: ignore[stub-rule]\n"
             "y = 2  # repro-lint: ignore[other-rule]\n"),
        )
        stub = _StubChecker([Finding("stub-rule", "m.py", 1, "boom")])
        report = run_lint(
            project=project,
            checkers=[stub, StaleSuppressionChecker()],
            only=["stale-suppression"],
        )
        assert [(f.rule, f.line) for f in report.findings] == [
            ("stale-suppression", 2),
        ]

    def test_own_suppression_is_suppressible_and_exempt(self):
        # ignore[stale-suppression] silences the audit on that line and
        # is itself exempt from the staleness check.
        project = _project(
            ("m.py",
             "x = 1  # repro-lint: ignore[gone-rule, stale-suppression]\n"),
        )
        report = run_lint(
            project=project,
            checkers=[_StubChecker([]), StaleSuppressionChecker()],
        )
        assert report.clean
        assert report.suppressed == 1

    def test_real_tree_suppressions_are_all_live(self, real_project):
        report = run_lint(project=real_project, only=["stale-suppression"])
        assert report.clean, report.to_text()
