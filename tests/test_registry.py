"""The predictor registry: the single point of kind-string dispatch.

Covers the built-in registrations (kinds, traits, factory classes,
labels), the registration lifecycle (duplicate policy, unregister,
plugin-module listing), and the end-to-end plugin contract: a kind
registered outside ``repro.*`` runs through ``run_cells`` with a pool
bit-identically to a serial run, with zero changes to the core.
"""

import pytest

from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    PredictorTraits,
    TargetCacheConfig,
)
from repro.predictors import registry
from repro.predictors.target_cache import (
    CascadedTargetCache,
    ITTageLite,
    LastTargetPredictor,
    OracleTargetPredictor,
    TaggedTargetCache,
    TaglessTargetCache,
    TargetPredictor,
)


BUILTIN_KINDS = ["btb2", "cascaded", "ittage", "last_target", "oracle",
                 "tagged", "tagless"]


class TestBuiltins:
    def test_registered_kinds(self):
        assert registry.registered_kinds() == BUILTIN_KINDS

    def test_registrations_sorted_and_complete(self):
        regs = registry.registrations()
        assert [r.kind for r in regs] == BUILTIN_KINDS
        for reg in regs:
            assert reg.traits.description
            assert reg.spec_examples, f"{reg.kind}: no spec examples"
            assert reg.module.startswith("repro.")

    @pytest.mark.parametrize("kind,cls", [
        ("tagless", TaglessTargetCache),
        ("tagged", TaggedTargetCache),
        ("cascaded", CascadedTargetCache),
        ("ittage", ITTageLite),
        ("oracle", OracleTargetPredictor),
        ("last_target", LastTargetPredictor),
    ])
    def test_factory_builds_the_advertised_class(self, kind, cls):
        reg = registry.registration(kind)
        built = registry.build_target_cache(TargetCacheConfig(kind=kind))
        assert isinstance(built, cls)
        assert cls in reg.provides

    def test_traits(self):
        assert registry.traits_for("oracle").is_oracle
        assert not registry.traits_for("oracle").needs_history
        assert not registry.traits_for("last_target").needs_history
        for kind in ("tagless", "tagged", "cascaded", "ittage"):
            traits = registry.traits_for(kind)
            assert traits.needs_history, kind
            assert not traits.is_oracle, kind
            assert traits.streams_supported, kind
            assert traits.deterministic, kind

    def test_unknown_kind_message_lists_registered(self):
        with pytest.raises(ValueError, match="bogus.*cascaded.*tagless"):
            registry.registration("bogus")
        with pytest.raises(ValueError, match="unknown target-cache kind"):
            registry.build_target_cache(TargetCacheConfig(kind="bogus"))

    def test_spec_examples_build_and_label(self):
        for reg in registry.registrations():
            for example in reg.spec_examples:
                assert example.kind == reg.kind
                predictor = reg.factory(example)
                assert isinstance(predictor, TargetPredictor)
                assert registry.predictor_label(example) != reg.kind


class _CountingPredictor(TargetPredictor):
    def predict(self, pc, history):
        return None

    def update(self, pc, history, target):
        pass

    def reset(self):
        pass


def _register_counting(kind="_test_counting"):
    registry.register(
        kind,
        factory=lambda config: _CountingPredictor(),
        traits=PredictorTraits(description="test-only stub"),
        provides=(_CountingPredictor,),
        spec_examples=(TargetCacheConfig(kind=kind),),
    )
    return kind


class TestLifecycle:
    def test_register_and_unregister(self):
        kind = _register_counting()
        try:
            assert kind in registry.registered_kinds()
            built = registry.build_target_cache(TargetCacheConfig(kind=kind))
            assert isinstance(built, _CountingPredictor)
            # no label function and no spec fields -> default bare render
            assert registry.predictor_label(TargetCacheConfig(kind=kind)) == (
                f"{kind}()"
            )
        finally:
            registry.unregister(kind)
        assert kind not in registry.registered_kinds()

    def test_reregister_same_module_replaces(self):
        kind = _register_counting()
        try:
            _register_counting(kind)  # same module: fine
            assert registry.registered_kinds().count(kind) == 1
        finally:
            registry.unregister(kind)

    def test_reregister_other_module_rejected(self):
        kind = _register_counting()

        def impostor_factory(config):
            return _CountingPredictor()

        impostor_factory.__module__ = "somewhere.else"
        try:
            with pytest.raises(ValueError, match="already registered"):
                registry.register(
                    kind,
                    factory=impostor_factory,
                    traits=PredictorTraits(description="impostor"),
                    provides=(_CountingPredictor,),
                )
        finally:
            registry.unregister(kind)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ValueError):
            registry.unregister("_never_registered")

    def test_builtins_cannot_be_shadowed_by_plugins(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(
                "tagless",
                factory=lambda config: _CountingPredictor(),
                traits=PredictorTraits(description="impostor"),
                provides=(_CountingPredictor,),
            )

    def test_plugin_modules_excludes_builtins(self):
        kind = _register_counting()
        try:
            modules = registry.plugin_modules()
            assert __name__ in modules or "__main__" in modules
            assert not any(m.startswith("repro") for m in modules)
        finally:
            registry.unregister(kind)

    def test_load_plugins_warns_on_missing_module(self):
        with pytest.warns(UserWarning, match="no_such_plugin_module"):
            registry.load_plugins(["no_such_plugin_module"])

    def test_load_plugins_skips_main(self):
        registry.load_plugins(["__main__"])  # must not raise


class TestPluginEndToEnd:
    def test_plugin_kind_through_run_cells_pool(self):
        """A plugin predictor runs through the pool bit-identically to
        serial, with no core edits."""
        from repro.runner import SweepCell, run_cells

        kind = _register_counting("_test_pool_plugin")
        try:
            config = EngineConfig(
                target_cache=TargetCacheConfig(kind=kind),
                history=HistoryConfig(bits=9),
            )
            cells = [SweepCell("perl", config),
                     SweepCell("perl", EngineConfig())]
            serial = run_cells(cells, jobs=1, trace_length=20_000)
            pooled = run_cells(cells, jobs=2, trace_length=20_000)
            assert serial == pooled
            # the stub never predicts: its indirect accuracy is the
            # BTB-only baseline
            assert (serial[0].indirect_mispred_rate
                    == serial[1].indirect_mispred_rate)
        finally:
            registry.unregister(kind)
