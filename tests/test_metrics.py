"""Unit tests for the metrics package (bootstrap CIs, shape comparison)."""

import pytest

from repro.metrics import (
    ConfidenceInterval,
    bootstrap_ci,
    orderings_agree,
    rate_confidence,
    segment_rates,
    shape_match,
)
from repro.predictors import EngineConfig


class TestBootstrap:
    def test_constant_samples_give_degenerate_interval(self):
        ci = bootstrap_ci([0.3] * 10)
        assert ci.estimate == pytest.approx(0.3)
        assert ci.low == pytest.approx(0.3)
        assert ci.high == pytest.approx(0.3)

    def test_interval_brackets_estimate(self):
        samples = [0.1, 0.2, 0.3, 0.4, 0.5, 0.2, 0.3, 0.1, 0.4, 0.3]
        ci = bootstrap_ci(samples)
        assert ci.low <= ci.estimate <= ci.high

    def test_wider_confidence_widens_interval(self):
        samples = [0.1, 0.5, 0.2, 0.4, 0.3, 0.6, 0.2, 0.1, 0.5, 0.3]
        narrow = bootstrap_ci(samples, confidence=0.5)
        wide = bootstrap_ci(samples, confidence=0.99)
        assert wide.half_width >= narrow.half_width

    def test_deterministic_per_seed(self):
        samples = [0.1, 0.3, 0.2, 0.5]
        assert bootstrap_ci(samples, seed=1) == bootstrap_ci(samples, seed=1)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([0.1], confidence=1.5)

    def test_contains(self):
        ci = ConfidenceInterval(estimate=0.3, low=0.2, high=0.4)
        assert ci.contains(0.25)
        assert not ci.contains(0.5)


class TestSegmentRates:
    def test_segments_cover_the_trace(self, perl_trace):
        rates = segment_rates(perl_trace, EngineConfig(), n_segments=10)
        assert 1 <= len(rates) <= 10
        assert all(0.0 <= rate <= 1.0 for rate in rates)

    def test_segment_mean_tracks_global_rate(self, perl_trace):
        from repro.predictors import simulate

        rates = segment_rates(perl_trace, EngineConfig(), n_segments=10)
        global_rate = simulate(perl_trace, EngineConfig()).indirect_mispred_rate
        mean = sum(rates) / len(rates)
        assert abs(mean - global_rate) < 0.08

    def test_rejects_bad_segments(self, perl_trace):
        with pytest.raises(ValueError):
            segment_rates(perl_trace, EngineConfig(), n_segments=0)

    def test_rate_confidence_end_to_end(self, perl_trace):
        ci = rate_confidence(perl_trace, EngineConfig(), n_segments=8)
        assert 0.0 <= ci.low <= ci.estimate <= ci.high <= 1.0
        # perl's BTB rate is ~75%: the CI must land in that neighbourhood
        assert ci.contains(0.75) or abs(ci.estimate - 0.75) < 0.10


class TestShapeComparison:
    def test_orderings_agree_on_identical_ranks(self):
        assert orderings_agree([1, 2, 3], [10, 20, 30])

    def test_orderings_disagree_on_inversion(self):
        assert not orderings_agree([1, 2, 3], [10, 30, 20])

    def test_tolerance_forgives_near_ties(self):
        assert orderings_agree([0.30, 0.31], [0.31, 0.30], tolerance=0.02)
        assert not orderings_agree([0.30, 0.60], [0.60, 0.30], tolerance=0.02)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            orderings_agree([1], [1, 2])

    def test_shape_match(self):
        paper = {"perl": 0.762, "gcc": 0.66, "vortex": 0.083}
        measured = {"perl": 0.75, "gcc": 0.54, "vortex": 0.089}
        result = shape_match(paper, measured)
        assert result["orderings"]
        assert result["magnitudes"]

    def test_shape_match_detects_magnitude_blowout(self):
        result = shape_match({"a": 0.1, "b": 0.5}, {"a": 0.9, "b": 0.95})
        assert not result["magnitudes"]

    def test_shape_match_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            shape_match({"a": 1.0}, {"b": 1.0})


class TestPaperCalibrationWithCIs:
    def test_table1_rates_within_ci_reach_of_paper_band(self, all_small_traces):
        """The headline calibration, now with sampling error quantified:
        each benchmark's CI must overlap a generous band around the
        paper's value."""
        from repro.workloads.registry import WORKLOADS

        for name in ("perl", "vortex", "compress"):
            ci = rate_confidence(all_small_traces[name], EngineConfig(),
                                 n_segments=8)
            paper = WORKLOADS[name].paper_btb_mispred
            assert ci.low - 0.15 <= paper <= ci.high + 0.15, (name, ci)
