"""Tests for the lowering-registry lint pass."""

import gc

import pytest

from repro.analysis import LoweringRegistryChecker
from repro.analysis.base import Project
from repro.guest import lowering as lowering_mod
from repro.guest.lowering import LoweringPass, get_lowering, lowering_names


def _rules(findings):
    return {finding.rule for finding in findings}


@pytest.fixture(scope="module")
def project():
    return Project.load()


class TestShippedTreeIsClean:
    def test_no_findings_on_the_shipped_registry(self, project):
        assert LoweringRegistryChecker().run(project) == []

    def test_builtin_lowerings_are_registered(self):
        assert {"jump_table", "if_tree", "clustered"} <= set(lowering_names())


class TestViolationsAreFlagged:
    def test_unregistered_pass_is_flagged(self, project):
        class _LintStubLowering(LoweringPass):
            name = "_lint_stub"
            label = "stub"

            def lower(self, b, site):  # pragma: no cover - never called
                raise NotImplementedError

        # Only classes inside the installed package are in scope.
        _LintStubLowering.__module__ = "repro.guest.lowering"
        try:
            findings = LoweringRegistryChecker().run(project)
            assert "lowering-unregistered-pass" in _rules(findings)
            assert any("_LintStubLowering" in f.message for f in findings)
        finally:
            del _LintStubLowering
            gc.collect()

    def test_missing_label_is_flagged(self, project):
        lowering = get_lowering("jump_table")
        cls = type(lowering)
        original = cls.label
        cls.label = ""
        try:
            findings = LoweringRegistryChecker().run(project)
            assert "lowering-missing-label" in _rules(findings)
        finally:
            cls.label = original

    def test_missing_spec_example_is_flagged(self, project):
        lowering = get_lowering("if_tree")
        cls = type(lowering)
        original = cls.spec_example
        cls.spec_example = {}
        try:
            findings = LoweringRegistryChecker().run(project)
            assert "lowering-missing-spec-example" in _rules(findings)
        finally:
            cls.spec_example = original

    def test_broken_spec_example_is_flagged(self, project):
        lowering = get_lowering("clustered")
        cls = type(lowering)
        original = cls.spec_example
        cls.spec_example = {"cases": 0}  # zero cases cannot lower
        try:
            findings = LoweringRegistryChecker().run(project)
            assert "lowering-spec-example-broken" in _rules(findings)
        finally:
            cls.spec_example = original

    def test_example_weights_are_exercised(self, project):
        lowering = get_lowering("clustered")
        cls = type(lowering)
        original = cls.spec_example
        # wrong arity: 2 weights for 4 cases must fail the scratch build
        cls.spec_example = {"cases": 4, "weights": [1, 2]}
        try:
            findings = LoweringRegistryChecker().run(project)
            assert "lowering-spec-example-broken" in _rules(findings)
        finally:
            cls.spec_example = original


class TestRegistryIsolation:
    def test_rogue_registration_cleanup(self):
        """register_lowering rejects collisions, so tests must not leak."""
        with pytest.raises(ValueError):
            lowering_mod.register_lowering(
                type("Dup", (LoweringPass,), {"name": "jump_table"})
            )
