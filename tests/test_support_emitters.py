"""Tests for the guest-side emitters in workloads.support."""

import random

import pytest

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import BranchKind
from repro.guest.vm import VM
from repro.trace.trace import Trace
from repro.workloads import support
from repro.workloads.support import RNG, T3


def _run(emit, max_instructions=5_000):
    b = ProgramBuilder()
    emit(b)
    b.halt()
    vm = VM(b.build(), max_instructions=max_instructions)
    trace = vm.run()
    return vm, Trace.from_raw(trace)


class TestDispatchEmitter:
    def test_reaches_selected_handler(self):
        b = ProgramBuilder()
        b.jmp("main")
        table = b.data_table(["h0", "h1"])
        b.label("h0")
        b.li(20, 100)
        b.halt()
        b.label("h1")
        b.li(20, 200)
        b.halt()
        b.label("main")
        b.li(5, 1)
        jr_addr = support.emit_dispatch(b, table, 5)
        program = b.build(entry="main")
        vm = VM(program)
        vm.run()
        assert vm.registers[20] == 200
        assert program.instruction_at(jr_addr).branch_kind is BranchKind.IND_JUMP

    def test_call_dispatch_returns(self):
        b = ProgramBuilder()
        b.jmp("main")
        table = b.data_table(["m0"])
        b.label("m0")
        b.li(20, 7)
        b.ret()
        b.label("main")
        b.li(5, 0)
        support.emit_call_dispatch(b, table, 5)
        b.addi(20, 20, 1)
        b.halt()
        program = b.build(entry="main")
        vm = VM(program)
        vm.run()
        assert vm.registers[20] == 8


class TestLCG:
    def test_state_advances_deterministically(self):
        def emit(b):
            b.li(RNG, 42)
            support.emit_lcg_step(b)
        vm1, _ = _run(emit)
        vm2, _ = _run(emit)
        assert vm1.registers[RNG] == vm2.registers[RNG]
        assert vm1.registers[RNG] != 42

    def test_random_bit_is_zero_or_one(self):
        def emit(b):
            b.li(RNG, 7)
            support.emit_random_bit(b, 9, bit=13)
        vm, _ = _run(emit)
        assert vm.registers[9] in (0, 1)

    def test_bits_look_balanced(self):
        b = ProgramBuilder()
        b.li(RNG, 1234)
        counter = 21
        b.li(counter, 0)
        b.li(10, 0)
        b.li(11, 400)
        b.label("loop")
        support.emit_random_bit(b, 9, bit=16)
        b.add(counter, counter, 9)
        b.addi(10, 10, 1)
        b.blt(10, 11, "loop")
        b.halt()
        vm = VM(b.build(), max_instructions=50_000)
        vm.run()
        assert 120 < vm.registers[counter] < 280  # ~50% of 400


class TestWorkLoop:
    def test_iterations_counted(self):
        def emit(b):
            b.li(20, 0)
            b.li(T3, 7)
            support.emit_work_loop(b, "work", T3)
        vm, _ = _run(emit)
        assert vm.registers[20] == 7  # default body increments r20

    def test_custom_body(self):
        def emit(b):
            b.li(22, 0)
            b.li(T3, 5)
            support.emit_work_loop(b, "work", T3,
                                   body=lambda: b.addi(22, 22, 2))
        vm, _ = _run(emit)
        assert vm.registers[22] == 10


class TestOperandPad:
    def test_outcomes_follow_value_bits(self):
        """Pad branch outcomes equal the tested bits of the operand."""
        value = 0b1011
        def emit(b):
            b.li(5, value)
            support.emit_operand_pad(b, 5, 4, random.Random(0), acc_reg=20,
                                     first_bit=0)
        _, trace = _run(emit)
        cond = trace.branch_kind == int(BranchKind.COND_DIRECT)
        outcomes = trace.taken[cond].tolist()
        # the pad's beq skips when the bit is SET is inverted: beq T3,0
        # taken iff bit == 0
        expected = [not bool((value >> bit) & 1) for bit in range(4)]
        assert outcomes == expected

    def test_bit_modulo_wraps(self):
        def emit(b):
            b.li(5, 0b11)
            support.emit_operand_pad(b, 5, 4, random.Random(0), acc_reg=20,
                                     first_bit=0, bit_modulo=2)
        _, trace = _run(emit)
        cond = trace.branch_kind == int(BranchKind.COND_DIRECT)
        # bits tested: 0,1,0,1 -> all set -> all not-taken
        assert trace.taken[cond].tolist() == [False] * 4


class TestPadHandler:
    def test_respects_bounds_and_determinism(self):
        lengths = set()
        for seed in range(5):
            b = ProgramBuilder()
            support.pad_handler(b, random.Random(seed), 2, 8)
            b.halt()
            lengths.add(b.build().num_instructions)
        assert all(3 <= n <= 13 for n in lengths)
        assert len(lengths) > 1  # varies with the seed


class TestHostHelpers:
    def test_handler_labels(self):
        assert support.handler_labels("h", 3) == ["h_0", "h_1", "h_2"]

    def test_weighted_sequence_range(self):
        rng = random.Random(0)
        seq = support.weighted_sequence(rng, 100, [1, 1, 1, 1])
        assert all(0 <= s < 4 for s in seq)

    def test_markov_rejects_bad_k(self):
        with pytest.raises(ValueError):
            support.markov_sequence(random.Random(0), 10, 0)

    def test_transition_fraction_edges(self):
        assert support.transition_fraction([]) == 0.0
        assert support.transition_fraction([1]) == 0.0
        assert support.transition_fraction([1, 2, 1]) == 1.0

    def test_word_offset(self):
        assert support.word_offset(3) == 12
