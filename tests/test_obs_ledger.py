"""The JSONL run ledger: sharding, merging, crash-safety, and neutrality.

The two load-bearing guarantees:

* **Process safety** — every process writes only its own pid-named shard,
  the parent merges on close, and a worker killed mid-run costs at most
  its unflushed tail (never a torn line in the merged ledger).
* **Result neutrality** — simulation outputs are bit-identical with the
  ledger enabled and disabled; obs only observes.
"""

import json
import os

import numpy as np
import pytest

from repro.guest.isa import BranchKind
from repro.obs import LedgerSink, get_sink, install, read_ledger, shutdown
from repro.predictors import EngineConfig, HistoryConfig, HistorySource, TargetCacheConfig
from repro.runner import SweepCell, run_cells

TRACE_LENGTH = 20_000

CONFIGS = [
    EngineConfig(),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless")),
    EngineConfig(
        target_cache=TargetCacheConfig(kind="tagged", entries=64, assoc=4),
        history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=9),
    ),
    EngineConfig(target_cache=TargetCacheConfig(kind="cascaded", entries=64,
                                                assoc=4)),
]


@pytest.fixture(autouse=True)
def _restore_sink():
    previous = get_sink()
    yield
    install(previous)


def _assert_identical(a, b):
    assert a.instructions == b.instructions
    assert a.btb_lookups == b.btb_lookups
    assert a.btb_hits == b.btb_hits
    for kind in BranchKind:
        assert a.counters(kind).executed == b.counters(kind).executed
        assert a.counters(kind).mispredicted == b.counters(kind).mispredicted
    if a.mispredict_mask is None:
        assert b.mispredict_mask is None
    else:
        assert np.array_equal(a.mispredict_mask, b.mispredict_mask)


class TestShardMechanics:
    def test_shard_exists_immediately_with_the_run_start_event(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        sink = LedgerSink(ledger)
        shard = tmp_path / f"run.jsonl.{os.getpid()}.part"
        assert shard.exists()
        [record] = [json.loads(line) for line in
                    shard.read_text().splitlines()]
        assert record["kind"] == "run"
        assert record["name"] == "start"
        assert record["role"] == "parent"
        assert record["pid"] == os.getpid()
        sink.close()

    def test_events_buffer_until_flush(self, tmp_path):
        sink = LedgerSink(tmp_path / "run.jsonl")
        shard = tmp_path / f"run.jsonl.{os.getpid()}.part"
        before = shard.read_text()
        sink.event("pool.chunk", cells=7)
        assert shard.read_text() == before  # buffered
        sink.flush()
        last = json.loads(shard.read_text().splitlines()[-1])
        assert last["kind"] == "event"
        assert last["meta"] == {"cells": 7}
        sink.close()

    def test_counters_accumulate_and_drain_once_per_flush(self, tmp_path):
        sink = LedgerSink(tmp_path / "run.jsonl")
        for _ in range(5):
            sink.incr("hits")
        sink.incr("hits", 10)
        sink.close()
        records = read_ledger(tmp_path / "run.jsonl")
        counters = [r for r in records if r["kind"] == "counter"]
        assert counters == [
            {"t": counters[0]["t"], "pid": os.getpid(), "kind": "counter",
             "name": "hits", "value": 15}
        ]

    def test_invalid_role_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="role"):
            LedgerSink(tmp_path / "run.jsonl", role="supervisor")

    def test_parent_clears_stale_shards_from_a_crashed_run(self, tmp_path):
        stale = tmp_path / "run.jsonl.99999.part"
        stale.write_text('{"kind":"span"}\n')
        sink = LedgerSink(tmp_path / "run.jsonl")
        assert not stale.exists()
        sink.close()

    def test_worker_role_never_merges(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        worker = LedgerSink(ledger, role="worker")
        worker.event("from-worker")
        worker.close()
        assert not ledger.exists()  # only the parent writes the final path
        shard = tmp_path / f"run.jsonl.{os.getpid()}.part"
        assert shard.exists()

    def test_closed_sink_drops_further_events(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        sink = LedgerSink(ledger)
        sink.close()
        n = len(read_ledger(ledger))
        sink.event("late")
        sink.flush()
        sink.close()
        assert len(read_ledger(ledger)) == n


class TestMerge:
    def test_merge_is_parent_first_then_workers_by_pid(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        sink = LedgerSink(ledger)
        my_pid = os.getpid()
        for fake_pid in (my_pid + 2, my_pid + 1):
            shard = tmp_path / f"run.jsonl.{fake_pid}.part"
            shard.write_text(json.dumps({"pid": fake_pid, "kind": "run",
                                         "name": "start",
                                         "role": "worker"}) + "\n")
        sink.close()
        pids = [record["pid"] for record in read_ledger(ledger)]
        assert pids == [my_pid, my_pid + 1, my_pid + 2]
        assert list(tmp_path.glob("*.part")) == []

    def test_merge_drops_torn_trailing_bytes(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        sink = LedgerSink(ledger)
        shard = tmp_path / "run.jsonl.99999.part"
        complete = json.dumps({"pid": 99999, "kind": "event", "name": "ok"})
        shard.write_text(complete + "\n" + '{"pid": 99999, "kind": "ev')
        sink.close()
        records = read_ledger(ledger)  # raises if any line is malformed
        assert {"pid": 99999, "kind": "event", "name": "ok"} in records

    def test_shard_with_no_complete_line_contributes_nothing(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        sink = LedgerSink(ledger)
        (tmp_path / "run.jsonl.99999.part").write_text('{"torn')
        sink.close()
        assert all(r["pid"] != 99999 for r in read_ledger(ledger))


class TestPoolLedger:
    def test_parallel_sweep_merges_worker_shards(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        install(LedgerSink(ledger))
        try:
            cells = [SweepCell("perl", config) for config in CONFIGS]
            run_cells(cells, jobs=2, trace_length=TRACE_LENGTH)
        finally:
            shutdown()
        records = read_ledger(ledger)  # well-formed JSONL or it raises
        assert list(tmp_path.glob("*.part")) == []
        roles = {(r["pid"], r["role"]) for r in records if r["kind"] == "run"}
        worker_pids = {pid for pid, role in roles if role == "worker"}
        parent_pids = {pid for pid, role in roles if role == "parent"}
        assert parent_pids == {os.getpid()}
        assert len(worker_pids) >= 1
        assert worker_pids.isdisjoint(parent_pids)
        # worker cell spans made it through the chunk-boundary flush
        cell_pids = {r["pid"] for r in records
                     if r["kind"] == "span" and r["name"] == "cell"}
        assert cell_pids <= worker_pids
        assert len([r for r in records if r["kind"] == "span"
                    and r["name"] == "cell"]) == len(cells)

    def test_worker_death_leaves_a_wellformed_ledger_with_recovery(
            self, tmp_path, monkeypatch):
        import multiprocessing

        import repro.runner.pool as pool_mod

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("needs fork workers to inherit the monkeypatch")
        monkeypatch.setattr(pool_mod, "_run_chunk", _kill_worker)
        ledger = tmp_path / "run.jsonl"
        install(LedgerSink(ledger))
        try:
            cells = [SweepCell("perl", config) for config in CONFIGS]
            with pytest.warns(UserWarning, match="broke mid-sweep"):
                results = run_cells(cells, jobs=2, trace_length=TRACE_LENGTH)
        finally:
            shutdown()
        assert len(results) == len(cells)
        records = read_ledger(ledger)  # no torn lines despite the kill
        events = {r["name"] for r in records if r["kind"] == "event"}
        assert "pool.broken" in events
        assert "pool.recovery" in events
        recovery = [r for r in records if r["kind"] == "event"
                    and r["name"] == "pool.recovery"]
        assert recovery[0]["meta"]["cells"] == len(cells)
        # the dead workers' run-start lines (flushed at attach) survived
        assert any(r["kind"] == "run" and r["role"] == "worker"
                   for r in records)


class TestResultNeutrality:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_results_bit_identical_with_obs_on_and_off(self, tmp_path, jobs):
        cells = [SweepCell("perl", config, collect_mask=True)
                 for config in CONFIGS]
        install(LedgerSink(tmp_path / "run.jsonl"))
        try:
            with_obs = run_cells(cells, jobs=jobs, trace_length=TRACE_LENGTH)
        finally:
            shutdown()
        without_obs = run_cells(cells, jobs=jobs, trace_length=TRACE_LENGTH)
        for one, two in zip(with_obs, without_obs):
            _assert_identical(one, two)


def _kill_worker(benchmark, items):
    """Chunk runner that dies like an OOM kill (module-level: workers
    resolve it by reference under fork)."""
    os._exit(1)
