"""Unit tests for pattern and path history registers."""

import pytest

from repro.guest.isa import BranchKind
from repro.predictors.history import (
    PathFilter,
    PathHistoryRegister,
    PatternHistoryRegister,
    PerAddressPathHistory,
)


class TestPatternHistory:
    def test_shifts_newest_lowest(self):
        register = PatternHistoryRegister(4)
        for outcome in (True, False, True, True):
            register.update(outcome)
        assert register.value == 0b1011

    def test_masks_to_width(self):
        register = PatternHistoryRegister(3)
        for _ in range(10):
            register.update(True)
        assert register.value == 0b111

    def test_snapshot_restore(self):
        register = PatternHistoryRegister(8)
        register.update(True)
        snapshot = register.snapshot()
        register.update(False)
        register.restore(snapshot)
        assert register.value == snapshot

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            PatternHistoryRegister(0)


class TestPathFilter:
    def test_control_accepts_every_branch(self):
        for kind in BranchKind:
            if kind is BranchKind.NOT_BRANCH:
                assert not PathFilter.CONTROL.accepts(kind)
            else:
                assert PathFilter.CONTROL.accepts(kind)

    def test_branch_accepts_only_conditionals(self):
        assert PathFilter.BRANCH.accepts(BranchKind.COND_DIRECT)
        assert not PathFilter.BRANCH.accepts(BranchKind.IND_JUMP)

    def test_call_ret(self):
        assert PathFilter.CALL_RET.accepts(BranchKind.CALL_DIRECT)
        assert PathFilter.CALL_RET.accepts(BranchKind.CALL_INDIRECT)
        assert PathFilter.CALL_RET.accepts(BranchKind.RETURN)
        assert not PathFilter.CALL_RET.accepts(BranchKind.COND_DIRECT)

    def test_ind_jmp_matches_target_cache_kinds(self):
        assert PathFilter.IND_JMP.accepts(BranchKind.IND_JUMP)
        assert PathFilter.IND_JMP.accepts(BranchKind.CALL_INDIRECT)
        assert not PathFilter.IND_JMP.accepts(BranchKind.RETURN)


class TestPathHistory:
    def test_records_selected_address_bit(self):
        register = PathHistoryRegister(bits=4, bits_per_target=1,
                                       address_bit=2)
        register.update(BranchKind.IND_JUMP, 0b0100)   # bit 2 = 1
        register.update(BranchKind.IND_JUMP, 0b1000)   # bit 2 = 0
        assert register.value == 0b10

    def test_bits_per_target(self):
        register = PathHistoryRegister(bits=6, bits_per_target=2,
                                       address_bit=2)
        register.update(BranchKind.IND_JUMP, 0b1100)   # bits 3:2 = 11
        register.update(BranchKind.IND_JUMP, 0b0100)   # bits 3:2 = 01
        assert register.value == 0b1101

    def test_filter_rejects_unmatched_kinds(self):
        register = PathHistoryRegister(bits=4, path_filter=PathFilter.IND_JMP)
        register.update(BranchKind.COND_DIRECT, 0xFFFF)
        assert register.value == 0

    def test_not_taken_conditional_contributes_nothing(self):
        """The paper records *targets*; a fall-through is not a target."""
        register = PathHistoryRegister(bits=4, path_filter=PathFilter.BRANCH)
        register.update(BranchKind.COND_DIRECT, 0b0100, redirected=False)
        assert register.value == 0
        register.update(BranchKind.COND_DIRECT, 0b0100, redirected=True)
        assert register.value == 1

    def test_targets_recorded(self):
        assert PathHistoryRegister(bits=9, bits_per_target=1).targets_recorded == 9
        assert PathHistoryRegister(bits=9, bits_per_target=3).targets_recorded == 3

    def test_capacity_tradeoff_is_real(self):
        """With fixed width, more bits per target = fewer targets kept."""
        narrow = PathHistoryRegister(bits=8, bits_per_target=1)
        wide = PathHistoryRegister(bits=8, bits_per_target=4)
        targets = [0b0100, 0b1000, 0b0100, 0b1100, 0b0000, 0b0100,
                   0b1000, 0b1000, 0b0100]
        for target in targets:
            narrow.force_update(target)
            wide.force_update(target)
        # the narrow register still holds a bit from targets[-8]; the wide
        # one only remembers the last two targets
        assert narrow.targets_recorded == 8
        assert wide.targets_recorded == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PathHistoryRegister(bits=0)
        with pytest.raises(ValueError):
            PathHistoryRegister(bits=4, bits_per_target=5)
        with pytest.raises(ValueError):
            PathHistoryRegister(bits=4, address_bit=-1)


class TestPerAddressPathHistory:
    def test_registers_are_independent(self):
        history = PerAddressPathHistory(bits=4)
        history.update(0x100, 0b0100)
        history.update(0x200, 0b0000)
        assert history.value(0x100) == 1
        assert history.value(0x200) == 0

    def test_unknown_pc_reads_zero(self):
        assert PerAddressPathHistory(bits=4).value(0x999) == 0

    def test_tracked_jumps(self):
        history = PerAddressPathHistory(bits=4)
        history.update(0x100, 4)
        history.update(0x100, 8)
        history.update(0x200, 4)
        assert history.tracked_jumps == 2
