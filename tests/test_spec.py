"""The declarative spec codec: lossless, JSON-stable, and key-coherent.

Three contracts pin the registry-era architecture:

1. ``from_spec(to_spec(cfg)) == cfg`` over the full config space — the
   spec is the config, with nothing dropped (hypothesis-swept when
   available, plus a hand-picked corner set either way);
2. :func:`repro.runner.keys.cell_key` is a pure function of the spec —
   equal specs give equal keys, different specs give different keys;
3. registry-built predictors are bit-identical to directly-constructed
   ones on every Table 4/7/9 cell, so routing construction through the
   registry changed no simulated result.
"""

import json

import pytest

from repro.experiments import configs as preset_configs
from repro.experiments.table4 import SCHEMES as TABLE4_SCHEMES
from repro.experiments.table4 import _config as table4_config
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    build_target_cache,
    from_spec,
    to_spec,
)
from repro.predictors.btb import UpdateStrategy
from repro.predictors.direction import DirectionConfig
from repro.predictors.history import PathFilter
from repro.predictors.indexing import parse_scheme
from repro.predictors.target_cache import (
    TaggedIndexing,
    TaggedTargetCache,
    TaglessTargetCache,
)
from repro.runner.keys import cell_key

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


# ----------------------------------------------------------------------
# Hand-picked corners (run even without hypothesis)
# ----------------------------------------------------------------------
CORNER_CONFIGS = [
    EngineConfig(),
    EngineConfig(btb_strategy=UpdateStrategy.TWO_BIT, ras_depth=1),
    EngineConfig(target_cache=TargetCacheConfig()),
    EngineConfig(
        target_cache=TargetCacheConfig(
            kind="tagged", entries=64, assoc=8,
            indexing=TaggedIndexing.ADDRESS, tag_bits=6, replacement="random",
        ),
        history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=13,
                              bits_per_target=3, address_bit=4,
                              path_filter=PathFilter.IND_JMP),
    ),
    EngineConfig(
        target_cache=TargetCacheConfig(kind="cascaded", tag_bits=None),
        history=HistoryConfig(source=HistorySource.PATH_PER_ADDRESS, bits=18),
        target_cache_handles_returns=True,
    ),
    EngineConfig(target_cache=TargetCacheConfig(kind="ittage", entries=32),
                 direction=DirectionConfig(scheme="pas", history_bits=6)),
    EngineConfig(target_cache=TargetCacheConfig(
        kind="btb2", entries=64, assoc=4, l2_entries=8192, l2_assoc=8)),
    EngineConfig(target_cache=TargetCacheConfig(kind="btb2", l2_entries=0)),
    EngineConfig(target_cache=TargetCacheConfig(kind="oracle")),
    EngineConfig(target_cache=TargetCacheConfig(kind="last_target")),
]


@pytest.mark.parametrize("config", CORNER_CONFIGS,
                         ids=lambda c: (c.target_cache.kind
                                        if c.target_cache else "none"))
def test_round_trip_corners(config):
    spec = config.to_spec()
    # the spec is genuinely JSON: a dumps/loads cycle must be the identity
    assert json.loads(json.dumps(spec)) == spec
    assert EngineConfig.from_spec(spec) == config


def test_round_trip_covers_every_field():
    """to_spec is total: every dataclass field appears, recursively."""
    config = EngineConfig(target_cache=TargetCacheConfig())
    spec = config.to_spec()
    assert set(spec) == {
        "btb_sets", "btb_ways", "btb_strategy", "direction", "ras_depth",
        "target_cache", "history", "target_cache_handles_returns",
    }
    assert set(spec["target_cache"]) == {
        "kind", "scheme", "history_bits", "address_bits", "entries",
        "assoc", "indexing", "tag_bits", "replacement",
        "l2_entries", "l2_assoc",
    }
    assert set(spec["history"]) == {
        "source", "bits", "bits_per_target", "address_bit", "path_filter",
    }


def test_enums_encode_as_values():
    spec = EngineConfig(btb_strategy=UpdateStrategy.TWO_BIT).to_spec()
    assert spec["btb_strategy"] == "two_bit"
    tc = TargetCacheConfig(indexing=TaggedIndexing.ADDRESS).to_spec()
    assert tc["indexing"] == "address"


def test_partial_spec_fills_defaults():
    config = EngineConfig.from_spec({"target_cache": {"kind": "oracle"}})
    assert config.target_cache == TargetCacheConfig(kind="oracle")
    assert config.btb_sets == EngineConfig().btb_sets
    assert config.history == HistoryConfig()


def test_unknown_field_rejected():
    with pytest.raises(ValueError, match="unknown.*bogus"):
        EngineConfig.from_spec({"bogus": 1})
    with pytest.raises(ValueError, match="unknown.*entires"):
        TargetCacheConfig.from_spec({"entires": 512})


def test_bad_enum_value_names_the_field_and_choices():
    with pytest.raises(ValueError, match="indexing.*address"):
        TargetCacheConfig.from_spec({"indexing": "adress"})


def test_type_mismatch_rejected():
    with pytest.raises(ValueError, match="entries"):
        TargetCacheConfig.from_spec({"entries": "lots"})
    with pytest.raises(ValueError, match="entries"):
        TargetCacheConfig.from_spec({"entries": True})  # bool is not an int
    with pytest.raises(ValueError, match="target_cache"):
        EngineConfig.from_spec({"target_cache": "oracle"})


def test_from_spec_requires_mapping():
    with pytest.raises(ValueError, match="mapping"):
        EngineConfig.from_spec([1, 2])
    with pytest.raises(TypeError):
        from_spec(int, {})
    with pytest.raises(TypeError):
        to_spec(42)


# ----------------------------------------------------------------------
# Hypothesis: the full config space round-trips
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    target_cache_configs = st.builds(
        TargetCacheConfig,
        kind=st.sampled_from(
            ["tagless", "tagged", "cascaded", "ittage", "btb2", "oracle",
             "last_target"]
        ),
        scheme=st.sampled_from(["gag", "gas", "gshare"]),
        history_bits=st.integers(min_value=1, max_value=20),
        address_bits=st.integers(min_value=0, max_value=8),
        entries=st.sampled_from([16, 64, 256, 1024]),
        assoc=st.sampled_from([1, 2, 4, 8]),
        indexing=st.sampled_from(list(TaggedIndexing)),
        tag_bits=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
        replacement=st.sampled_from(["lru", "random"]),
        l2_entries=st.sampled_from([0, 1024, 4096, 8192]),
        l2_assoc=st.sampled_from([1, 2, 4, 8]),
    )
    history_configs = st.builds(
        HistoryConfig,
        source=st.sampled_from(list(HistorySource)),
        bits=st.integers(min_value=1, max_value=64),
        bits_per_target=st.integers(min_value=1, max_value=8),
        address_bit=st.integers(min_value=0, max_value=8),
        path_filter=st.sampled_from(list(PathFilter)),
    )
    engine_configs = st.builds(
        EngineConfig,
        btb_sets=st.sampled_from([16, 256]),
        btb_ways=st.sampled_from([1, 4]),
        btb_strategy=st.sampled_from(list(UpdateStrategy)),
        direction=st.builds(
            DirectionConfig,
            scheme=st.sampled_from(["gag", "gas", "gshare", "pas"]),
            history_bits=st.integers(min_value=1, max_value=16),
            address_bits=st.integers(min_value=0, max_value=4),
        ),
        ras_depth=st.integers(min_value=0, max_value=64),
        target_cache=st.one_of(st.none(), target_cache_configs),
        history=history_configs,
        target_cache_handles_returns=st.booleans(),
    )

    @settings(max_examples=200, deadline=None)
    @given(engine_configs)
    def test_round_trip_full_space(config):
        spec = config.to_spec()
        assert EngineConfig.from_spec(json.loads(json.dumps(spec))) == config

    @settings(max_examples=50, deadline=None)
    @given(engine_configs, engine_configs)
    def test_cell_key_is_a_function_of_the_spec(a, b):
        key_a = cell_key("perl", a, 1000, 1)
        key_b = cell_key("perl", b, 1000, 1)
        assert (key_a == key_b) == (a.to_spec() == b.to_spec())


def test_cell_key_stable_against_spec():
    """Equal specs -> equal keys; any field change -> a different key."""
    base = EngineConfig(target_cache=TargetCacheConfig())
    same = EngineConfig.from_spec(base.to_spec())
    assert cell_key("perl", base, 1000, 1) == cell_key("perl", same, 1000, 1)
    changed = EngineConfig(
        target_cache=TargetCacheConfig(history_bits=10)
    )
    assert cell_key("perl", base, 1000, 1) != cell_key("perl", changed, 1000, 1)


# ----------------------------------------------------------------------
# Presets are specs for the canonical constructor configs
# ----------------------------------------------------------------------
def test_presets_match_constructors():
    from repro.experiments.modern import _cascade_engine, ittage_engine

    assert preset_configs.preset("btb-only") == EngineConfig()
    assert preset_configs.preset("tagless-gshare9") == (
        preset_configs.tagless_engine()
    )
    assert preset_configs.preset("tagged-4way") == (
        preset_configs.tagged_engine(assoc=4)
    )
    assert preset_configs.preset("cascaded-256") == (
        _cascade_engine(preset_configs.pattern_history(9))
    )
    assert preset_configs.preset("ittage-lite") == ittage_engine()
    assert preset_configs.preset("btb2-micro") == preset_configs.btb2_engine()


def test_preset_unknown_name():
    with pytest.raises(KeyError, match="available"):
        preset_configs.preset("nope")
    assert preset_configs.preset_names()[0] == "btb-only"


# ----------------------------------------------------------------------
# Registry-built == directly-constructed on every Table 4/7/9 cell
# ----------------------------------------------------------------------
def _drive(predictor, calls):
    """Deterministic predict/update interleaving; returns the outputs."""
    out = []
    for pc, history, target in calls:
        out.append(predictor.predict(pc, history))
        predictor.update(pc, history, target)
    return out


def _call_sequence(n=400):
    """A deterministic, interference-heavy (pc, history, target) stream."""
    calls = []
    state = 12345
    for i in range(n):
        state = (1103515245 * state + 12345) % (1 << 31)
        pc = 0x1000 + (state % 37) * 4
        history = (state >> 7) & 0x1FFFF
        target = 0x8000 + (state % 11) * 4
        calls.append((pc, history, target))
    return calls


def _table_479_cells():
    from repro.experiments.table9 import _config as table9_config

    cells = [table4_config(kwargs) for kwargs in TABLE4_SCHEMES]
    cells += [
        preset_configs.tagged_engine(assoc=assoc, indexing=indexing)
        for assoc in (1, 2, 4, 8, 16, 32)
        for indexing in TaggedIndexing
    ]
    cells += [
        table9_config(assoc, bits)
        for assoc in (1, 2, 4, 8, 16, 32)
        for bits in (9, 16)
    ]
    return cells


def _direct_build(config):
    """Construct the predictor the pre-registry if/elif chain built."""
    if config.kind == "tagless":
        return TaglessTargetCache(
            parse_scheme(config.scheme, config.history_bits,
                         config.address_bits)
        )
    assert config.kind == "tagged"
    return TaggedTargetCache(
        entries=config.entries, assoc=config.assoc,
        indexing=config.indexing, history_bits=config.history_bits,
        tag_bits=config.tag_bits, replacement=config.replacement,
    )


def test_registry_matches_direct_construction_on_table_cells():
    calls = _call_sequence()
    cells = _table_479_cells()
    assert len(cells) == 4 + 18 + 12
    for engine_config in cells:
        tc = engine_config.target_cache
        assert tc is not None
        via_registry = _drive(build_target_cache(tc), calls)
        direct = _drive(_direct_build(tc), calls)
        assert via_registry == direct, tc
