"""The vector-hygiene checker: no Python loops in the vectorized tier."""

import textwrap

from repro.analysis import run_lint
from repro.analysis.base import Project, SourceFile
from repro.analysis.vector_hygiene import VECTOR_PATHS, VectorHygieneChecker


def _check(code, relpath="predictors/vector.py"):
    source = SourceFile.from_text(relpath, textwrap.dedent(code))
    return VectorHygieneChecker().check_file(source)


def _project(code, relpath="predictors/vector.py"):
    source = SourceFile.from_text(relpath, textwrap.dedent(code))
    return Project(root=None, files=[source])


class TestLoopDetection:
    def test_for_loop_is_flagged(self):
        code = """
        def simulate_vector(columns):
            total = 0
            for row in columns.rows:
                total += row
            return total
        """
        findings = _check(code)
        assert [f.rule for f in findings] == ["vector-python-loop"]
        assert "'for' loop" in findings[0].message
        assert "simulate_vector" in findings[0].message

    def test_while_loop_is_flagged(self):
        code = """
        def drain(queue):
            while queue:
                queue.pop()
        """
        findings = _check(code)
        assert [f.rule for f in findings] == ["vector-python-loop"]
        assert "'while' loop" in findings[0].message

    def test_module_level_loop_is_flagged(self):
        code = """
        TABLE = {}
        for value in (1, 2, 3):
            TABLE[value] = value * 2
        """
        findings = _check(code)
        assert [f.rule for f in findings] == ["vector-python-loop"]
        assert "<module>" in findings[0].message

    def test_nested_function_owner_is_reported(self):
        code = """
        def outer():
            def inner(rows):
                for row in rows:
                    pass
            return inner
        """
        findings = _check(code)
        assert [f.rule for f in findings] == ["vector-python-loop"]
        assert "outer.inner" in findings[0].message

    def test_every_loop_is_reported(self):
        code = """
        def kernel(rows):
            for row in rows:
                pass
            while rows:
                rows.pop()
        """
        assert len(_check(code)) == 2

    def test_whole_array_code_is_clean(self):
        code = """
        import numpy as np

        def kernel(indices, targets):
            order = np.argsort(indices, kind="stable")
            return targets[order]
        """
        assert _check(code) == []

    def test_comprehensions_are_exempt(self):
        # Comprehensions appear in setup code (per-kind counter maps),
        # never as a per-branch walk; only statements are banned.
        code = """
        def setup(kinds):
            return {kind: kind.value for kind in kinds}
        """
        assert _check(code) == []


class TestScope:
    def test_other_modules_are_ignored(self):
        code = """
        def simulate(records):
            for record in records:
                pass
        """
        project = _project(code, relpath="predictors/streams.py")
        assert VectorHygieneChecker().run(project) == []

    def test_missing_vector_module_is_not_an_error(self):
        project = Project(root=None, files=[])
        assert VectorHygieneChecker().run(project) == []


class TestSuppression:
    def test_ignore_comment_suppresses_the_loop(self):
        code = """
        def drive(configs):
            for config in configs:  # repro-lint: ignore[vector-python-loop]
                config.run()
        """
        report = run_lint(
            _project(code), checkers=[VectorHygieneChecker()]
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestShippedModule:
    def test_shipped_vector_module_is_loop_free(self):
        # The real module's two sanctioned loops carry suppressions; the
        # checker itself must report them (run_lint filters them out).
        project = Project.load()
        report = run_lint(project, checkers=[VectorHygieneChecker()])
        assert report.findings == [], [f.format() for f in report.findings]
        assert report.suppressed >= 2

    def test_vector_paths_exist_in_the_tree(self):
        project = Project.load()
        for relpath in VECTOR_PATHS:
            assert project.file(relpath) is not None, relpath

    def test_checker_is_registered(self):
        from repro.analysis import CHECKERS

        assert any(c.name == "vector-hygiene" for c in CHECKERS)
