"""The bit-width checker: masks, width names, and bounded indexing."""

import textwrap

from repro.analysis.base import SourceFile
from repro.analysis.bitwidth import BitWidthChecker


def _findings(code, relpath="predictors/x.py"):
    source = SourceFile.from_text(relpath, textwrap.dedent(code))
    return BitWidthChecker().check_file(source)


def _rules(code):
    return [f.rule for f in _findings(code)]


class TestMaskForm:
    def test_canonical_shift_mask_is_accepted(self):
        code = """
        class R:
            def __init__(self, bits):
                self._mask = (1 << bits) - 1
        """
        assert _rules(code) == []

    def test_wrong_shape_is_flagged(self):
        code = """
        class R:
            def __init__(self, bits):
                self._mask = (1 << bits)
        """
        assert _rules(code) == ["bitwidth-mask-form"]

    def test_size_minus_one_accepted_with_shift_provenance(self):
        code = """
        class T:
            def __init__(self, history_bits):
                table_size = 1 << history_bits
                self._mask = table_size - 1
        """
        assert _rules(code) == []

    def test_size_minus_one_accepted_with_po2_guard(self):
        code = """
        class B:
            def __init__(self, sets):
                if sets & (sets - 1):
                    raise ValueError("not a power of two")
                self._set_mask = sets - 1
        """
        assert _rules(code) == []

    def test_size_minus_one_rejected_without_provenance(self):
        code = """
        class B:
            def __init__(self, sets):
                self._set_mask = sets - 1
        """
        assert _rules(code) == ["bitwidth-mask-form"]

    def test_floordiv_of_guarded_size_is_accepted(self):
        code = """
        class C:
            def __init__(self, entries, assoc):
                if entries & (entries - 1):
                    raise ValueError("not a power of two")
                n_sets = entries // assoc
                self._set_mask = n_sets - 1
        """
        assert _rules(code) == []

    def test_optional_mask_via_ifexp_is_accepted(self):
        code = """
        class T:
            def __init__(self, tag_bits):
                self._tag_mask = (
                    None if tag_bits is None else (1 << tag_bits) - 1
                )
        """
        assert _rules(code) == []


class TestMaskWidthNames:
    def test_widened_register_with_forgotten_mask_is_flagged(self):
        # The seeded-bad fixture from the issue: the register is declared
        # with a configurable width but the mask hardcodes the old one.
        code = """
        class PatternHistoryRegister:
            def __init__(self, bits):
                self.bits = bits
                self._mask = (1 << 12) - 1
        """
        rules = _rules(code)
        assert rules == ["bitwidth-mask-mismatch"]

    def test_mask_built_from_wrong_width_is_flagged(self):
        code = """
        class R:
            def __init__(self, bits, bits_per_target):
                self._mask = (1 << bits_per_target) - 1
        """
        assert _rules(code) == ["bitwidth-mask-mismatch"]

    def test_target_mask_from_bits_per_target_is_accepted(self):
        code = """
        class R:
            def __init__(self, bits, bits_per_target):
                self._mask = (1 << bits) - 1
                self._target_mask = (1 << bits_per_target) - 1
        """
        assert _rules(code) == []

    def test_constant_mask_without_width_param_is_accepted(self):
        code = """
        class LCG:
            def __init__(self):
                self._state_mask = (1 << 32) - 1
        """
        assert _rules(code) == []


class TestSizedTableIndexing:
    def test_unmasked_index_into_sized_table_is_flagged(self):
        code = """
        class T:
            def __init__(self, n):
                self._counters = [0] * n
            def read(self, pc):
                return self._counters[pc]
        """
        assert _rules(code) == ["bitwidth-unmasked-index"]

    def test_masked_index_is_accepted(self):
        code = """
        class T:
            def __init__(self, n):
                self._counters = [0] * n
                self._mask = n - 1
            def read(self, pc):
                return self._counters[pc & self._mask]
        """
        # The mask-form rule still applies to the constructor; filter it.
        rules = [r for r in _rules(code) if r == "bitwidth-unmasked-index"]
        assert rules == []

    def test_modulo_index_is_accepted(self):
        code = """
        class T:
            def __init__(self, n):
                self._slots = [None] * n
            def read(self, i):
                return self._slots[i % len(self._slots)]
        """
        assert _rules(code) == []

    def test_range_loop_variable_is_accepted(self):
        code = """
        class T:
            def __init__(self, n):
                self._slots = [0] * n
            def total(self):
                acc = 0
                for i in range(len(self._slots)):
                    acc += self._slots[i]
                return acc
        """
        assert _rules(code) == []

    def test_trusted_index_call_is_accepted(self):
        code = """
        class T:
            def __init__(self, scheme, n):
                self.scheme = scheme
                self._targets = [None] * n
            def predict(self, pc, history):
                return self._targets[self.scheme.index(pc, history)]
        """
        assert _rules(code) == []

    def test_dict_attribute_is_not_a_sized_table(self):
        code = """
        class T:
            def __init__(self):
                self._by_pc = {}
            def read(self, pc):
                return self._by_pc[pc]
        """
        assert _rules(code) == []

    def test_annassign_sized_table_is_collected(self):
        code = """
        class T:
            def __init__(self, n):
                self._counters: list = [1] * n
            def read(self, pc):
                return self._counters[pc]
        """
        assert _rules(code) == ["bitwidth-unmasked-index"]


class TestTrustedReturns:
    def test_trusted_helper_returning_masked_value_is_accepted(self):
        code = """
        class S:
            def __init__(self, bits):
                self._mask = (1 << bits) - 1
            def index(self, pc, history):
                return (pc ^ history) & self._mask
        """
        assert _rules(code) == []

    def test_trusted_helper_returning_raw_value_is_flagged(self):
        code = """
        class S:
            def index(self, pc, history):
                return pc ^ history
        """
        assert _rules(code) == ["bitwidth-unmasked-index"]

    def test_locate_returning_bucket_of_sized_table_is_accepted(self):
        code = """
        class B:
            def __init__(self, sets):
                if sets & (sets - 1):
                    raise ValueError("po2")
                self._set_mask = sets - 1
                self._storage = [[] for _ in range(sets)]
            def _locate(self, pc):
                return self._storage[pc & self._set_mask], pc >> 4
        """
        assert _rules(code) == []


class TestShippedPredictors:
    def test_shipped_predictors_are_clean(self):
        from repro.analysis.base import Project

        project = Project.load()
        findings = BitWidthChecker().run(project)
        assert findings == [], [f.format() for f in findings]
