"""The parallel sweep runner: bit-for-bit equivalence and memoisation.

The acceptance bar for :mod:`repro.runner` is that parallelism and caching
are *invisible* in the numbers: ``run_cells(jobs=4)``, ``run_cells(jobs=1)``
and a warm-result-cache re-run must produce identical
:class:`PredictionStats` counters and mispredict masks.
"""

import os

import numpy as np
import pytest

from repro.experiments.common import ExperimentContext
from repro.guest.isa import BranchKind
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
    simulate,
    simulate_many,
)
from repro.runner import ResultCache, SweepCell, run_cells

TRACE_LENGTH = 20_000

#: A representative slice of the design space: BTB-only baseline, tagless
#: pattern-history, tagged path-history, and a cascaded cache.
CONFIGS = [
    EngineConfig(),
    EngineConfig(target_cache=TargetCacheConfig(kind="tagless")),
    EngineConfig(
        target_cache=TargetCacheConfig(kind="tagged", entries=64, assoc=4),
        history=HistoryConfig(source=HistorySource.PATH_GLOBAL, bits=9),
    ),
    EngineConfig(target_cache=TargetCacheConfig(kind="cascaded", entries=64,
                                                assoc=4)),
]


def _cells():
    return [
        SweepCell(benchmark, config, collect_mask=True)
        for benchmark in ("perl", "gcc")
        for config in CONFIGS
    ]


def assert_identical(a, b):
    assert a.instructions == b.instructions
    assert a.btb_lookups == b.btb_lookups
    assert a.btb_hits == b.btb_hits
    for kind in BranchKind:
        assert a.counters(kind).executed == b.counters(kind).executed
        assert a.counters(kind).mispredicted == b.counters(kind).mispredicted
    if a.mispredict_mask is None:
        assert b.mispredict_mask is None
    else:
        assert np.array_equal(a.mispredict_mask, b.mispredict_mask)


class TestRunCellsEquivalence:
    def test_parallel_serial_and_cached_runs_are_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "results")
        serial = run_cells(_cells(), jobs=1, trace_length=TRACE_LENGTH)
        parallel = run_cells(_cells(), jobs=4, trace_length=TRACE_LENGTH,
                             result_cache=cache)
        cached = run_cells(_cells(), jobs=4, trace_length=TRACE_LENGTH,
                           result_cache=cache)
        for one, two, three in zip(serial, parallel, cached):
            assert_identical(one, two)
            assert_identical(one, three)
        # the runs found real work: indirect jumps exist and the target
        # cache beats the BTB baseline on perl
        assert serial[0].indirect_jumps > 100
        assert serial[1].indirect_mispred_rate < serial[0].indirect_mispred_rate

    def test_matches_direct_simulate(self):
        from repro.workloads import get_trace

        trace = get_trace("perl", n_instructions=TRACE_LENGTH)
        config = CONFIGS[1]
        direct = simulate(trace, config, collect_mask=True)
        [via_runner] = run_cells(
            [SweepCell("perl", config, collect_mask=True)],
            jobs=1, trace_length=TRACE_LENGTH,
        )
        assert_identical(direct, via_runner)

    def test_duplicate_cells_simulated_once_and_shared(self):
        cell = SweepCell("perl", EngineConfig())
        first, second = run_cells([cell, cell], jobs=1,
                                  trace_length=TRACE_LENGTH)
        assert first is second

    def test_results_keep_cell_order(self):
        cells = _cells()
        results = run_cells(cells, jobs=4, trace_length=TRACE_LENGTH)
        # perl and gcc have different instruction mixes; ordering mistakes
        # would pair a perl cell with gcc counters
        perl_branches = results[0].branches
        gcc_branches = results[len(CONFIGS)].branches
        assert perl_branches != gcc_branches
        for i, cell in enumerate(cells):
            expected = perl_branches if cell.benchmark == "perl" else gcc_branches
            assert results[i].branches == expected


class TestSimulateMany:
    def test_bit_identical_to_independent_calls(self):
        from repro.workloads import get_trace

        trace = get_trace("gcc", n_instructions=TRACE_LENGTH)
        batched = simulate_many(trace, CONFIGS, collect_mask=True)
        for config, stats in zip(CONFIGS, batched):
            assert_identical(stats, simulate(trace, config, collect_mask=True))


class TestExperimentContextMemo:
    def test_prediction_memoised_per_config(self):
        ctx = ExperimentContext(trace_length=TRACE_LENGTH)
        first = ctx.prediction("perl", EngineConfig())
        second = ctx.prediction("perl", EngineConfig())
        assert first is second

    def test_baseline_equal_cells_share_the_baseline_run(self):
        ctx = ExperimentContext(trace_length=TRACE_LENGTH)
        baseline = ctx.baseline("perl")
        # a table sweeping EngineConfig() cells must reuse the baseline
        assert ctx.prediction("perl", EngineConfig()) is baseline

    def test_mask_request_upgrades_maskless_memo_entry(self):
        ctx = ExperimentContext(trace_length=TRACE_LENGTH)
        config = CONFIGS[1]
        no_mask = ctx.prediction("perl", config)
        assert no_mask.mispredict_mask is None
        with_mask = ctx.prediction("perl", config, collect_mask=True)
        assert with_mask.mispredict_mask is not None
        # counters must agree between the two runs
        for kind in BranchKind:
            assert (no_mask.counters(kind).executed
                    == with_mask.counters(kind).executed)
            assert (no_mask.counters(kind).mispredicted
                    == with_mask.counters(kind).mispredicted)
        # and the memo now serves the maskful stats for both request kinds
        assert ctx.prediction("perl", config) is with_mask

    def test_batch_predictions_fill_the_memo(self):
        ctx = ExperimentContext(trace_length=TRACE_LENGTH, jobs=2)
        cells = [("perl", config) for config in CONFIGS]
        batch = ctx.predictions(cells)
        for cell, stats in zip(cells, batch):
            assert ctx.prediction(*cell) is stats


def _kill_worker(benchmark, items):
    """Chunk runner that dies abruptly, breaking the whole process pool.

    Module-level so the fork-started workers can unpickle it by reference.
    ``os._exit`` skips all cleanup, like an OOM kill or a stray SIGKILL.
    """
    os._exit(1)


class TestPoolFallback:
    def test_worker_death_mid_sweep_recovers_serially(self, monkeypatch):
        import multiprocessing

        import repro.runner.pool as pool_mod

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("needs fork workers to inherit the monkeypatch")
        monkeypatch.setattr(pool_mod, "_run_chunk", _kill_worker)
        cells = [SweepCell("perl", config, collect_mask=True)
                 for config in CONFIGS]
        with pytest.warns(UserWarning, match="broke mid-sweep"):
            results = run_cells(cells, jobs=2, trace_length=TRACE_LENGTH)
        # the serial retry (which never touches _run_chunk) must deliver
        # every cell, bit-identical to a plain serial run
        reference = run_cells(cells, jobs=1, trace_length=TRACE_LENGTH)
        assert len(results) == len(cells)
        for got, want in zip(results, reference):
            assert_identical(got, want)

    def test_pool_failure_degrades_to_serial(self, monkeypatch):
        import repro.runner.pool as pool_mod

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", broken_pool)
        with pytest.warns(UserWarning, match="running sweep serially"):
            results = run_cells(
                [SweepCell("perl", config) for config in CONFIGS[:2]],
                jobs=4, trace_length=TRACE_LENGTH,
            )
        reference = run_cells(
            [SweepCell("perl", config) for config in CONFIGS[:2]],
            jobs=1, trace_length=TRACE_LENGTH,
        )
        for got, want in zip(results, reference):
            assert_identical(got, want)


class TestSplitChunks:
    """Edge cases of the chunking helper behind ``run_cells``."""

    def test_empty_items_yield_no_chunks(self):
        from repro.runner.pool import _split_chunks

        assert _split_chunks([], 4) == []

    def test_more_pieces_than_items_caps_at_item_count(self):
        from repro.runner.pool import _split_chunks

        chunks = _split_chunks([1, 2], 8)
        assert chunks == [[1], [2]]

    def test_zero_pieces_clamps_to_one(self):
        from repro.runner.pool import _split_chunks

        assert _split_chunks([1, 2, 3], 0) == [[1, 2, 3]]

    def test_order_is_preserved_and_partition_is_exact(self):
        from repro.runner.pool import _split_chunks

        items = list(range(11))
        chunks = _split_chunks(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        # Balanced: sizes differ by at most one.
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestDefaultJobs:
    def test_env_override_is_honoured(self, monkeypatch):
        from repro.runner import default_jobs

        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4

    def test_zero_clamps_to_one(self, monkeypatch):
        from repro.runner import default_jobs

        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_non_integer_warns_and_defaults(self, monkeypatch):
        from repro.runner import default_jobs

        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(UserWarning, match="REPRO_JOBS"):
            assert default_jobs() == 1

    def test_unset_defaults_to_serial(self, monkeypatch):
        from repro.runner import default_jobs

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
