"""``config_token`` edge cases and the cache-key defect regressions.

The persistent result cache trusts ``config_token`` to be injective on
config space and stable across Python versions; these tests pin the
rendering conventions that guarantee both.
"""

import json
from dataclasses import dataclass, field
from enum import IntEnum
from pathlib import Path
from typing import Dict

import pytest

from repro.guest.isa import InstrClass
from repro.pipeline import MachineConfig
from repro.predictors import (
    EngineConfig,
    HistoryConfig,
    HistorySource,
    TargetCacheConfig,
)
from repro.runner.keys import (
    _fingerprint_label,
    cell_key,
    config_token,
    engine_code_fingerprint,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


@dataclass(frozen=True)
class _Inner:
    depth: int = 4


@dataclass(frozen=True)
class _Outer:
    inner: _Inner = field(default_factory=_Inner)
    name: str = "x"


class _Knob(IntEnum):
    LOW = 0
    HIGH = 1


class TestRendering:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert config_token(value) == value

    def test_dataclass_renders_module_qualified_name(self):
        token = config_token(_Inner())
        assert token[0] == f"{_Inner.__module__}.{_Inner.__qualname__}"
        assert token[1] == {"depth": 4}

    def test_nested_dataclasses_render_recursively(self):
        token = config_token(_Outer())
        fields = token[1]
        assert fields["name"] == "x"
        inner_name, inner_fields = fields["inner"]
        assert inner_name.endswith("._Inner")
        assert inner_fields == {"depth": 4}

    def test_same_name_different_module_do_not_collide(self):
        # Regression: tokens used bare class names, so a same-named
        # dataclass anywhere in the codebase aliased cache entries.
        import tests.test_config_token as here

        @dataclass(frozen=True)
        class _Inner:  # shadows the module-level _Inner by bare name
            depth: int = 4

        clone = _Inner()
        assert type(clone).__name__ == here._Inner.__name__
        assert config_token(clone) != config_token(here._Inner())

    def test_enum_renders_qualified_name_and_value(self):
        token = config_token(HistorySource.PATTERN)
        assert token[1] == HistorySource.PATTERN.value
        assert token[0].endswith("HistorySource")
        assert "." in token[0]

    def test_tuple_and_list_render_distinctly(self):
        # Regression: both rendered as JSON arrays, so configs differing
        # only in ("a",) vs ["a"] shared a cache key.
        assert config_token((1, 2)) != config_token([1, 2])
        assert config_token((1, 2)) == ["tuple", [1, 2]]
        assert config_token([1, 2]) == [1, 2]

    def test_empty_tuple_differs_from_empty_list(self):
        assert config_token(()) != config_token([])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            config_token({1, 2, 3})


class TestDictKeys:
    def test_intenum_keys_render_as_class_dot_member(self):
        # str(IntEnum) changed between 3.10 ("Knob.LOW") and 3.12 ("0");
        # the rendering must not follow it.
        token = config_token({_Knob.LOW: 1, _Knob.HIGH: 2})
        assert token == {"_Knob.LOW": 1, "_Knob.HIGH": 2}

    def test_machine_config_latencies_are_stable(self):
        token = config_token(MachineConfig())
        latencies = token[1]["latencies"]
        assert all(key.startswith("InstrClass.") for key in latencies)

    def test_dict_key_order_is_canonical(self):
        forward = config_token({_Knob.LOW: 1, _Knob.HIGH: 2})
        backward = config_token({_Knob.HIGH: 2, _Knob.LOW: 1})
        assert json.dumps(forward, sort_keys=True) == \
            json.dumps(backward, sort_keys=True)


class TestEngineConfigTokens:
    def test_full_config_is_json_serialisable(self):
        config = EngineConfig(
            target_cache=TargetCacheConfig(kind="tagged"),
            history=HistoryConfig(source=HistorySource.PATH_GLOBAL),
        )
        json.dumps(config_token(config))  # must not raise

    def test_distinct_configs_distinct_tokens(self):
        base = EngineConfig()
        variants = [
            EngineConfig(btb_sets=base.btb_sets * 2),
            EngineConfig(ras_depth=base.ras_depth + 1),
            EngineConfig(target_cache=TargetCacheConfig()),
            EngineConfig(history=HistoryConfig(bits=13)),
        ]
        tokens = {json.dumps(config_token(c), sort_keys=True)
                  for c in [base] + variants}
        assert len(tokens) == len(variants) + 1

    def test_cell_key_depends_on_config(self):
        a = cell_key("compress", EngineConfig(), 1000, 1)
        b = cell_key("compress", EngineConfig(btb_sets=1024), 1000, 1)
        assert a != b


class TestFingerprintLabels:
    def test_label_is_package_relative(self):
        import repro.predictors.engine as engine_module

        label = _fingerprint_label(Path(engine_module.__file__))
        assert label == "repro/predictors/engine.py"

    def test_same_basename_files_get_distinct_labels(self):
        # Regression: labels used path.name only, so pipeline/config.py
        # and target_cache/config.py hashed under the same label.
        import repro.pipeline.config as pipeline_config
        import repro.predictors.target_cache.config as tc_config

        a = _fingerprint_label(Path(pipeline_config.__file__))
        b = _fingerprint_label(Path(tc_config.__file__))
        assert a != b

    def test_outside_package_falls_back_to_name(self, tmp_path):
        stray = tmp_path / "stray.py"
        stray.write_text("x = 1\n")
        assert _fingerprint_label(stray) == "stray.py"

    def test_engine_fingerprint_is_stable_within_a_process(self):
        assert engine_code_fingerprint() == engine_code_fingerprint()


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestTokenInjectivity:
    @settings(max_examples=60, deadline=None)
    @given(
        btb_sets=st.sampled_from([128, 256, 512]),
        ras_depth=st.integers(min_value=0, max_value=16),
        bits=st.integers(min_value=1, max_value=16),
        source=st.sampled_from(list(HistorySource)),
    )
    def test_distinct_configs_never_collide(self, btb_sets, ras_depth, bits,
                                            source):
        config = EngineConfig(
            btb_sets=btb_sets,
            ras_depth=ras_depth,
            history=HistoryConfig(bits=bits, source=source),
        )
        rendered = json.dumps(config_token(config), sort_keys=True)
        seen = _SEEN_TOKENS.setdefault(rendered, config)
        assert seen == config  # same token implies same config

_SEEN_TOKENS: Dict[str, EngineConfig] = {}
