"""Unit tests for the branch target buffer and its update strategies."""

import pytest

from repro.guest.isa import BranchKind
from repro.predictors.btb import BranchTargetBuffer, UpdateStrategy


JUMP = BranchKind.IND_JUMP
COND = BranchKind.COND_DIRECT


class TestBasics:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x100) is None
        btb.update(0x100, COND, 0x200)
        entry = btb.lookup(0x100)
        assert entry is not None
        assert entry.target == 0x200
        assert entry.kind is COND
        assert entry.fallthrough == 0x104

    def test_hit_rate_counters(self):
        btb = BranchTargetBuffer()
        btb.lookup(0x100)
        btb.update(0x100, COND, 0x200)
        btb.lookup(0x100)
        assert btb.lookups == 2
        assert btb.hits == 1
        assert btb.hit_rate == 0.5

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=100)
        with pytest.raises(ValueError):
            BranchTargetBuffer(ways=0)

    def test_distinct_sets_do_not_conflict(self):
        btb = BranchTargetBuffer(sets=4, ways=1)
        for i in range(4):
            btb.update(i * 4, COND, 0x400 + i)
        for i in range(4):
            assert btb.lookup(i * 4).target == 0x400 + i


class TestIndexing:
    """Set-index/tag extraction: word = pc/4, set = word & (sets-1),
    tag = word >> log2(sets)."""

    def test_same_set_different_tags_coexist(self):
        # sets=4: pcs 0x00 and 0x40 are words 0 and 16 — both set 0,
        # tags 0 and 4.  With 2 ways they must not evict each other.
        btb = BranchTargetBuffer(sets=4, ways=2)
        btb.update(0x00, COND, 0x400)
        btb.update(0x40, COND, 0x800)
        assert btb.lookup(0x00).target == 0x400
        assert btb.lookup(0x40).target == 0x800

    def test_tag_mismatch_is_a_miss_not_an_alias(self):
        btb = BranchTargetBuffer(sets=4, ways=2)
        btb.update(0x00, COND, 0x400)
        # same set (0), different tag: must miss, never alias
        assert btb.lookup(0x40) is None

    def test_adjacent_pcs_map_to_adjacent_sets(self):
        btb = BranchTargetBuffer(sets=4, ways=1)
        # words 0..3 land in sets 0..3: four single-way sets hold all four
        for i in range(4):
            btb.update(i * 4, COND, 0x400 + 4 * i)
        assert btb.occupancy() == 4
        for i in range(4):
            assert btb.lookup(i * 4).target == 0x400 + 4 * i

    def test_stored_tag_strips_set_bits(self):
        btb = BranchTargetBuffer(sets=4, ways=2)
        btb.update(0x40, COND, 0x800)   # word 16 = set 0, tag 4
        assert btb.lookup(0x40).tag == 4

    def test_single_set_uses_full_word_as_tag(self):
        btb = BranchTargetBuffer(sets=1, ways=4)
        btb.update(0x100, COND, 0x400)  # word 64
        assert btb.lookup(0x100).tag == 64


class TestLRU:
    def test_eviction_order(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x000, COND, 1 * 4)
        btb.update(0x100, COND, 2 * 4)
        btb.update(0x200, COND, 3 * 4)  # evicts 0x000
        assert btb.lookup(0x000) is None
        assert btb.lookup(0x100) is not None
        assert btb.lookup(0x200) is not None

    def test_lookup_refreshes_recency(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x000, COND, 4)
        btb.update(0x100, COND, 8)
        btb.lookup(0x000)                 # 0x100 becomes LRU
        btb.update(0x200, COND, 12)
        assert btb.lookup(0x100) is None
        assert btb.lookup(0x000) is not None

    def test_occupancy(self):
        btb = BranchTargetBuffer(sets=2, ways=2)
        for i in range(3):
            btb.update(i * 4, COND, 0x40)
        assert btb.occupancy() == 3


class TestDefaultStrategy:
    def test_indirect_target_updated_on_every_miss(self):
        btb = BranchTargetBuffer(strategy=UpdateStrategy.DEFAULT)
        btb.update(0x100, JUMP, 0x400)
        btb.update(0x100, JUMP, 0x800, predicted_target_correct=False)
        assert btb.lookup(0x100).target == 0x800

    def test_correct_prediction_keeps_target(self):
        btb = BranchTargetBuffer(strategy=UpdateStrategy.DEFAULT)
        btb.update(0x100, JUMP, 0x400)
        btb.update(0x100, JUMP, 0x400, predicted_target_correct=True)
        assert btb.lookup(0x100).target == 0x400


class TestTwoBitStrategy:
    def test_single_miss_does_not_replace(self):
        """Calder & Grunwald: wait for two consecutive misses."""
        btb = BranchTargetBuffer(strategy=UpdateStrategy.TWO_BIT)
        btb.update(0x100, JUMP, 0x400)
        btb.update(0x100, JUMP, 0x800, predicted_target_correct=False)
        assert btb.lookup(0x100).target == 0x400  # survived one miss

    def test_two_consecutive_misses_replace(self):
        btb = BranchTargetBuffer(strategy=UpdateStrategy.TWO_BIT)
        btb.update(0x100, JUMP, 0x400)
        btb.update(0x100, JUMP, 0x800, predicted_target_correct=False)
        btb.update(0x100, JUMP, 0x800, predicted_target_correct=False)
        assert btb.lookup(0x100).target == 0x800

    def test_correct_prediction_resets_streak(self):
        btb = BranchTargetBuffer(strategy=UpdateStrategy.TWO_BIT)
        btb.update(0x100, JUMP, 0x400)
        btb.update(0x100, JUMP, 0x800, predicted_target_correct=False)
        btb.update(0x100, JUMP, 0x400, predicted_target_correct=True)
        btb.update(0x100, JUMP, 0xC00, predicted_target_correct=False)
        # streak was reset, so one more miss still does not replace
        assert btb.lookup(0x100).target == 0x400

    def test_hysteresis_protects_dominant_target(self):
        """A-B-A-B-A... with dominant A: 2-bit keeps A, default thrashes."""
        def mispredicts(strategy):
            btb = BranchTargetBuffer(strategy=strategy)
            stream = [0x400, 0x800, 0x400, 0x400, 0x800, 0x400, 0x400,
                      0x800, 0x400, 0x400]
            misses = 0
            for target in stream:
                entry = btb.lookup(0x100)
                predicted = entry.target if entry else None
                correct = predicted == target
                if not correct:
                    misses += 1
                btb.update(0x100, JUMP, target,
                           predicted_target_correct=correct)
            return misses

        assert mispredicts(UpdateStrategy.TWO_BIT) < mispredicts(
            UpdateStrategy.DEFAULT
        )

    def test_streak_resets_after_replacement(self):
        """After hysteresis replaces the target, the new target gets its
        own two-miss grace period — the streak does not carry over."""
        btb = BranchTargetBuffer(strategy=UpdateStrategy.TWO_BIT)
        btb.update(0x100, JUMP, 0x400)
        btb.update(0x100, JUMP, 0x800, predicted_target_correct=False)
        btb.update(0x100, JUMP, 0x800, predicted_target_correct=False)
        assert btb.lookup(0x100).target == 0x800  # replaced
        btb.update(0x100, JUMP, 0xC00, predicted_target_correct=False)
        assert btb.lookup(0x100).target == 0x800  # one miss: survives

    def test_eviction_discards_hysteresis_state(self):
        """A re-allocated entry is fresh: it stores the new target
        immediately, with no streak carried from the evicted life."""
        btb = BranchTargetBuffer(sets=1, ways=1,
                                 strategy=UpdateStrategy.TWO_BIT)
        btb.update(0x100, JUMP, 0x400)
        btb.update(0x100, JUMP, 0x800, predicted_target_correct=False)
        btb.update(0x200, JUMP, 0xC00)  # evicts 0x100 (streak=1)
        btb.update(0x100, JUMP, 0x800)  # fresh allocation
        entry = btb.lookup(0x100)
        assert entry.target == 0x800
        assert entry.miss_streak == 0

    def test_direct_branches_unaffected_by_strategy(self):
        btb = BranchTargetBuffer(strategy=UpdateStrategy.TWO_BIT)
        btb.update(0x100, COND, 0x400)
        btb.update(0x100, COND, 0x400, predicted_target_correct=False)
        assert btb.lookup(0x100).target == 0x400
