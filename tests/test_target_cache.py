"""Unit tests for the target cache variants (the paper's contribution)."""

import pytest

from repro.predictors.indexing import GAgIndex, GShareIndex
from repro.predictors.target_cache import (
    LastTargetPredictor,
    OracleTargetPredictor,
    TaggedIndexing,
    TaggedTargetCache,
    TaglessTargetCache,
    TargetCacheConfig,
    build_target_cache,
)


class TestTagless:
    def test_miss_then_hit(self):
        cache = TaglessTargetCache(GShareIndex(6))
        assert cache.predict(0x100, 0b1010) is None
        cache.update(0x100, 0b1010, 0x400)
        assert cache.predict(0x100, 0b1010) == 0x400

    def test_different_history_selects_different_entry(self):
        cache = TaglessTargetCache(GShareIndex(6))
        cache.update(0x100, 0b000001, 0x400)
        cache.update(0x100, 0b000010, 0x800)
        assert cache.predict(0x100, 0b000001) == 0x400
        assert cache.predict(0x100, 0b000010) == 0x800

    def test_interference_between_jumps(self):
        """No tags: two jumps hashing to the same entry clobber each other
        — the §3.2 motivation for the tagged variant."""
        cache = TaglessTargetCache(GAgIndex(4))  # history-only index
        cache.update(0x100, 0b0101, 0x400)
        cache.update(0x200, 0b0101, 0x800)  # same history, other jump
        assert cache.predict(0x100, 0b0101) == 0x800  # interference!

    def test_structural_miss_counter(self):
        cache = TaglessTargetCache(GAgIndex(4))
        cache.predict(0, 0)
        cache.update(0, 0, 0x40)
        cache.predict(0, 0)
        assert cache.predictions == 2
        assert cache.structural_misses == 1

    def test_utilisation(self):
        cache = TaglessTargetCache(GAgIndex(4))
        assert cache.utilisation() == 0.0
        cache.update(0, 0b0001, 0x40)
        assert cache.utilisation() == pytest.approx(1 / 16)

    def test_reset(self):
        cache = TaglessTargetCache(GAgIndex(4))
        cache.update(0, 0, 0x40)
        cache.reset()
        assert cache.predict(0, 0) is None


class TestTaggedGeometry:
    def test_entry_and_assoc_validation(self):
        with pytest.raises(ValueError):
            TaggedTargetCache(entries=100)
        with pytest.raises(ValueError):
            TaggedTargetCache(entries=256, assoc=3)
        with pytest.raises(ValueError):
            TaggedTargetCache(replacement="fifo")

    def test_fully_associative(self):
        cache = TaggedTargetCache(entries=16, assoc=16)
        assert cache.n_sets == 1


class TestTaggedBehaviour:
    def test_no_interference_between_jumps(self):
        """Tags isolate different jumps even at the same index."""
        cache = TaggedTargetCache(entries=16, assoc=4,
                                  indexing=TaggedIndexing.HISTORY_CONCAT)
        cache.update(0x100, 0b0101, 0x400)
        cache.update(0x200, 0b0101, 0x800)
        assert cache.predict(0x100, 0b0101) == 0x400
        assert cache.predict(0x200, 0b0101) == 0x800

    def test_tag_miss_returns_none(self):
        cache = TaggedTargetCache(entries=16, assoc=2)
        assert cache.predict(0x100, 0) is None
        assert cache.tag_misses == 1

    def test_lru_within_set(self):
        cache = TaggedTargetCache(entries=4, assoc=2,
                                  indexing=TaggedIndexing.ADDRESS)
        pc = 0x100
        # Address indexing: same pc + different history -> same set,
        # different tags, so the third context evicts the first.
        cache.update(pc, 1, 0x40)
        cache.update(pc, 2, 0x80)
        cache.update(pc, 3, 0xC0)
        assert cache.predict(pc, 1) is None
        assert cache.predict(pc, 2) == 0x80
        assert cache.predict(pc, 3) == 0xC0

    def test_predict_refreshes_lru(self):
        cache = TaggedTargetCache(entries=4, assoc=2,
                                  indexing=TaggedIndexing.ADDRESS)
        pc = 0x100
        cache.update(pc, 1, 0x40)
        cache.update(pc, 2, 0x80)
        cache.predict(pc, 1)          # refresh context 1
        cache.update(pc, 3, 0xC0)     # evicts context 2
        assert cache.predict(pc, 1) == 0x40
        assert cache.predict(pc, 2) is None

    def test_update_existing_tag_replaces_target(self):
        cache = TaggedTargetCache(entries=16, assoc=4)
        cache.update(0x100, 5, 0x40)
        cache.update(0x100, 5, 0x80)
        assert cache.predict(0x100, 5) == 0x80
        assert cache.occupancy() == 1

    def test_history_bits_mask(self):
        cache = TaggedTargetCache(entries=16, assoc=4, history_bits=4)
        cache.update(0x100, 0b10101, 0x40)
        # history is masked to 4 bits, so 0b0101 aliases 0b10101
        assert cache.predict(0x100, 0b00101) == 0x40

    def test_finite_tag_bits_cause_aliasing(self):
        full = TaggedTargetCache(entries=4, assoc=4, history_bits=9)
        narrow = TaggedTargetCache(entries=4, assoc=4, history_bits=9,
                                   tag_bits=1)
        # two contexts whose tags differ only above bit 0
        full.update(0x100, 0b000000000, 0x40)
        narrow.update(0x100, 0b000000000, 0x40)
        probe = 0b100000000
        assert full.predict(0x100, probe) is None
        # with 1 tag bit the two contexts alias to the same entry
        assert narrow.predict(0x100, probe) == 0x40

    def test_random_replacement_is_seed_deterministic(self):
        def fill(seed):
            cache = TaggedTargetCache(entries=4, assoc=2, seed=seed,
                                      replacement="random",
                                      indexing=TaggedIndexing.ADDRESS)
            for h in range(8):
                cache.update(0x100, h, h * 16)
            return sorted(
                t for bucket in cache._sets for t in bucket.values()
            )
        assert fill(1) == fill(1)

    def test_reset(self):
        cache = TaggedTargetCache(entries=16, assoc=4)
        cache.update(0x100, 0, 0x40)
        cache.reset()
        assert cache.occupancy() == 0


class TestTaggedIndexSchemes:
    def test_address_indexing_maps_one_jump_to_one_set(self):
        """The §4.3.1 problem: all of a jump's contexts share a set."""
        cache = TaggedTargetCache(entries=64, assoc=1,
                                  indexing=TaggedIndexing.ADDRESS)
        sets = {cache._locate(0x100, h)[0] for h in range(32)}
        assert len(sets) == 1

    def test_history_xor_spreads_one_jump_across_sets(self):
        cache = TaggedTargetCache(entries=64, assoc=1,
                                  indexing=TaggedIndexing.HISTORY_XOR)
        sets = {cache._locate(0x100, h)[0] for h in range(32)}
        assert len(sets) > 16

    def test_history_concat_spreads_too(self):
        cache = TaggedTargetCache(entries=64, assoc=1,
                                  indexing=TaggedIndexing.HISTORY_CONCAT)
        sets = {cache._locate(0x100, h)[0] for h in range(32)}
        assert len(sets) > 16


class TestBoundingPredictors:
    def test_oracle_predicts_primed_target(self):
        oracle = OracleTargetPredictor()
        oracle.prime(0x1234)
        assert oracle.predict(0, 0) == 0x1234
        oracle.update(0, 0, 0x1234)
        assert oracle.predict(0, 0) is None  # consumed

    def test_last_target(self):
        predictor = LastTargetPredictor()
        assert predictor.predict(0x100, 0) is None
        predictor.update(0x100, 0, 0x40)
        assert predictor.predict(0x100, 99) == 0x40  # history ignored
        predictor.reset()
        assert predictor.predict(0x100, 0) is None


class TestConfigFactory:
    def test_builds_every_kind(self):
        assert isinstance(
            build_target_cache(TargetCacheConfig(kind="tagless")),
            TaglessTargetCache,
        )
        assert isinstance(
            build_target_cache(TargetCacheConfig(kind="tagged")),
            TaggedTargetCache,
        )
        assert isinstance(
            build_target_cache(TargetCacheConfig(kind="oracle")),
            OracleTargetPredictor,
        )
        assert isinstance(
            build_target_cache(TargetCacheConfig(kind="last_target")),
            LastTargetPredictor,
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_target_cache(TargetCacheConfig(kind="bogus"))

    def test_labels(self):
        assert TargetCacheConfig(kind="tagless", scheme="gag").label() == "GAg(9)"
        assert TargetCacheConfig(
            kind="tagless", scheme="gas", history_bits=8, address_bits=1
        ).label() == "GAs(8,1)"
        assert "tagged" in TargetCacheConfig(kind="tagged").label()

    def test_every_kind_has_parameterised_label(self):
        """No kind may fall through to the bare kind string."""
        for kind in ("tagless", "tagged", "cascaded", "ittage", "oracle",
                     "last_target"):
            label = TargetCacheConfig(kind=kind).label()
            assert label != kind, f"{kind}: bare-kind label"
        assert TargetCacheConfig(kind="cascaded").label() == (
            "cascaded(256e/4w/history_xor/h9)"
        )
        assert TargetCacheConfig(kind="ittage", entries=128).label() == (
            "ittage(4x128)"
        )
        assert TargetCacheConfig(kind="oracle").label() == "oracle(perfect)"
        assert TargetCacheConfig(kind="last_target").label() == (
            "last-target(unbounded)"
        )

    def test_tagless_table_size_matches_paper(self):
        """The paper's tagless configurations are 512 entries."""
        cache = build_target_cache(TargetCacheConfig(kind="tagless"))
        assert cache.entries == 512
