"""Tests for the §5 future-work OO workloads (richards / deltablue)."""

import pytest

from repro.experiments import ExperimentContext, run_experiment
from repro.experiments.configs import path_scheme_history, tagless_engine
from repro.predictors import EngineConfig, simulate
from repro.trace.stats import branch_mix, target_profile
from repro.workloads import build_program, get_trace, workload_names
from repro.workloads.registry import OO_WORKLOADS, WORKLOADS


@pytest.fixture(scope="module")
def richards_trace():
    return get_trace("richards", n_instructions=50_000, use_cache=False)


@pytest.fixture(scope="module")
def deltablue_trace():
    return get_trace("deltablue", n_instructions=50_000, use_cache=False)


class TestRegistrySeparation:
    def test_oo_workloads_registered(self):
        assert set(OO_WORKLOADS) == {"richards", "deltablue"}

    def test_spec_tables_remain_eight_rows(self):
        assert len(WORKLOADS) == 8
        assert "richards" not in WORKLOADS

    def test_names_listing(self):
        assert "richards" not in workload_names()
        assert "richards" in workload_names(include_oo=True)

    def test_buildable(self):
        for name in OO_WORKLOADS:
            program = build_program(name)
            assert program.num_instructions > 50


class TestRichards:
    def test_trace_valid_and_polymorphic(self, richards_trace):
        richards_trace.validate()
        profile = target_profile(richards_trace)
        assert profile.max_targets() >= 3  # several task types run

    def test_scheduler_dispatch_defeats_btb(self, richards_trace):
        stats = simulate(richards_trace, EngineConfig())
        assert stats.indirect_mispred_rate > 0.5

    def test_target_cache_recovers_most_of_it(self, richards_trace):
        base = simulate(richards_trace, EngineConfig()).indirect_mispred_rate
        with_tc = simulate(
            richards_trace,
            tagless_engine(history=path_scheme_history(
                "ind jmp", bits=10, bits_per_target=2)),
        ).indirect_mispred_rate
        assert with_tc < base * 0.7


class TestDeltablue:
    def test_trace_valid(self, deltablue_trace):
        deltablue_trace.validate()

    def test_high_indirect_density(self, deltablue_trace):
        """The §5 premise: OO code executes far more indirect branches."""
        mix = branch_mix(deltablue_trace)
        assert mix.indirect_fraction > 0.03

    def test_two_virtual_call_sites_six_receivers(self, deltablue_trace):
        profile = target_profile(deltablue_trace)
        assert profile.static_jumps == 2
        assert profile.max_targets() == 6

    def test_plan_execution_is_history_predictable(self, deltablue_trace):
        base = simulate(deltablue_trace, EngineConfig()).indirect_mispred_rate
        with_tc = simulate(
            deltablue_trace,
            tagless_engine(history=path_scheme_history(
                "ind jmp", bits=10, bits_per_target=2)),
        ).indirect_mispred_rate
        assert base > 0.5
        assert with_tc < base * 0.7


class TestFutureWorkExperiment:
    def test_experiment_supports_the_papers_prediction(self):
        ctx = ExperimentContext(trace_length=60_000, use_trace_cache=False)
        table = run_experiment("oo_future_work", ctx)
        for benchmark in ("richards", "deltablue"):
            btb = table.cell(benchmark, "BTB mispred")
            tagged = table.cell(benchmark, "tagged 8-way TC")
            assert tagged < btb
            assert table.cell(benchmark, "exec reduction (tagged)") > 0.0
        # the density premise: deltablue far above the SPEC ~0.5-2% range
        assert table.cell("deltablue", "indirect density") > 0.03
