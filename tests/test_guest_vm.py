"""Unit tests for the functional VM: opcode semantics, control flow,
faults, and trace recording."""

import pytest

from repro.guest.builder import ProgramBuilder
from repro.guest.isa import BranchKind, InstrClass
from repro.guest.vm import VM, VMError, run_program


def _run(build_body, max_instructions=10_000):
    b = ProgramBuilder()
    vm_regs = build_body(b)
    b.halt()
    program = b.build()
    vm = VM(program, max_instructions=max_instructions)
    trace = vm.run()
    return vm, trace


class TestArithmetic:
    def test_add_sub_mul(self):
        def body(b):
            b.li(1, 6)
            b.li(2, 7)
            b.add(3, 1, 2)
            b.sub(4, 2, 1)
            b.mul(5, 1, 2)
        vm, _ = _run(body)
        assert vm.registers[3] == 13
        assert vm.registers[4] == 1
        assert vm.registers[5] == 42

    def test_div_and_mod_by_zero_give_zero(self):
        def body(b):
            b.li(1, 10)
            b.div(2, 1, 0)
            b.mod(3, 1, 0)
        vm, _ = _run(body)
        assert vm.registers[2] == 0
        assert vm.registers[3] == 0

    def test_div_truncates_toward_zero(self):
        def body(b):
            b.li(1, 7)
            b.li(2, 2)
            b.div(3, 1, 2)
        vm, _ = _run(body)
        assert vm.registers[3] == 3

    def test_logic_and_shifts(self):
        def body(b):
            b.li(1, 0b1100)
            b.li(2, 0b1010)
            b.and_(3, 1, 2)
            b.or_(4, 1, 2)
            b.xor(5, 1, 2)
            b.shli(6, 1, 2)
            b.shri(7, 1, 2)
            b.andi(8, 1, 0b0100)
            b.xori(9, 1, 0b0001)
        vm, _ = _run(body)
        assert vm.registers[3] == 0b1000
        assert vm.registers[4] == 0b1110
        assert vm.registers[5] == 0b0110
        assert vm.registers[6] == 0b110000
        assert vm.registers[7] == 0b11
        assert vm.registers[8] == 0b0100
        assert vm.registers[9] == 0b1101

    def test_slt(self):
        def body(b):
            b.li(1, 3)
            b.li(2, 5)
            b.slt(3, 1, 2)
            b.slt(4, 2, 1)
        vm, _ = _run(body)
        assert vm.registers[3] == 1
        assert vm.registers[4] == 0

    def test_float_ops(self):
        def body(b):
            b.li(1, 3)
            b.li(2, 2)
            b.fadd(3, 1, 2)
            b.fmul(4, 3, 2)
            b.fdiv(5, 4, 2)
            b.fsub(6, 5, 1)
            b.fdiv(7, 1, 0)    # divide by zero -> 0.0
        vm, _ = _run(body)
        assert vm.registers[3] == 5.0
        assert vm.registers[4] == 10.0
        assert vm.registers[5] == 5.0
        assert vm.registers[6] == 2.0
        assert vm.registers[7] == 0.0

    def test_r0_is_hardwired_zero(self):
        def body(b):
            b.li(0, 99)
            b.add(1, 0, 0)
        vm, _ = _run(body)
        assert vm.registers[0] == 0
        assert vm.registers[1] == 0


class TestMemory:
    def test_store_then_load(self):
        def body(b):
            b.li(1, 0x10000)
            b.li(2, 77)
            b.store(2, 1, 8)
            b.load(3, 1, 8)
        vm, _ = _run(body)
        assert vm.registers[3] == 77

    def test_uninitialised_memory_reads_zero(self):
        def body(b):
            b.li(1, 0x30000)
            b.load(2, 1)
        vm, _ = _run(body)
        assert vm.registers[2] == 0

    def test_initial_data_visible(self):
        b = ProgramBuilder()
        addr = b.data_word(123)
        b.li(1, addr)
        b.load(2, 1)
        b.halt()
        vm = VM(b.build())
        vm.run()
        assert vm.registers[2] == 123

    def test_trace_records_effective_address(self):
        def body(b):
            b.li(1, 0x10000)
            b.store(1, 1, 4)
        _, trace = _run(body)
        assert trace.mem_addr[-1] == 0x10004


class TestControlFlow:
    def test_conditional_branch_taken_and_not_taken(self):
        def body(b):
            b.li(1, 1)
            b.beq(1, 0, "skip")     # not taken
            b.li(2, 5)
            b.label("skip")
            b.bne(1, 0, "end")      # taken
            b.li(2, 9)              # skipped
            b.label("end")
        vm, trace = _run(body)
        assert vm.registers[2] == 5
        kinds = trace.branch_kind
        takens = trace.taken
        cond_rows = [i for i, k in enumerate(kinds)
                     if k == int(BranchKind.COND_DIRECT)]
        assert [bool(takens[i]) for i in cond_rows] == [False, True]

    def test_blt_bge(self):
        def body(b):
            b.li(1, 2)
            b.li(2, 5)
            b.blt(1, 2, "a")
            b.li(3, 111)            # skipped
            b.label("a")
            b.bge(2, 1, "b")
            b.li(3, 222)            # skipped
            b.label("b")
        vm, _ = _run(body)
        assert vm.registers[3] == 0

    def test_call_and_return(self):
        def body(b):
            b.jmp("main")
            b.label("fn")
            b.li(5, 42)
            b.ret()
            b.label("main")
            b.call("fn")
            b.add(6, 5, 0)
        vm, trace = _run(body)
        assert vm.registers[6] == 42
        assert int(BranchKind.CALL_DIRECT) in trace.branch_kind
        assert int(BranchKind.RETURN) in trace.branch_kind

    def test_indirect_jump_records_target(self):
        def body(b):
            b.jmp("main")
            b.label("dest")
            b.li(5, 1)
            b.jmp("out")
            b.label("main")
            b.li(1, "dest")
            b.jr(1)
            b.label("out")
        vm, trace = _run(body)
        assert vm.registers[5] == 1
        assert trace.branch_kind.count(int(BranchKind.IND_JUMP)) == 1

    def test_indirect_call(self):
        def body(b):
            b.jmp("main")
            b.label("fn")
            b.li(5, 7)
            b.ret()
            b.label("main")
            b.li(1, "fn")
            b.callr(1)
        vm, _ = _run(body)
        assert vm.registers[5] == 7

    def test_return_without_call_faults(self):
        b = ProgramBuilder()
        b.ret()
        program = b.build()
        with pytest.raises(VMError, match="empty call stack"):
            VM(program).run()

    def test_call_stack_overflow_faults(self):
        b = ProgramBuilder()
        b.label("rec")
        b.call("rec")
        b.halt()
        with pytest.raises(VMError, match="overflow"):
            VM(b.build(), call_stack_limit=50).run()

    def test_bad_pc_faults(self):
        b = ProgramBuilder()
        b.li(1, 0x5000)
        b.jr(1)
        with pytest.raises(VMError, match="outside code segment"):
            VM(b.build()).run()


class TestExecutionLimits:
    def test_instruction_cap_stops_infinite_loop(self):
        b = ProgramBuilder()
        b.label("spin")
        b.jmp("spin")
        vm = VM(b.build(), max_instructions=500)
        trace = vm.run()
        assert len(trace) == 500
        assert not trace.halted

    def test_halt_sets_flag_and_is_not_recorded(self):
        def body(b):
            b.li(1, 1)
        _, trace = _run(body)
        assert trace.halted
        assert len(trace) == 1  # only the li; halt itself is not a row


class TestTraceContents:
    def test_classes_recorded(self):
        def body(b):
            b.li(1, 2)
            b.mul(2, 1, 1)
            b.fadd(3, 1, 1)
            b.load(4, 1)
            b.store(4, 1)
            b.shli(5, 1, 1)
        _, trace = _run(body)
        classes = set(trace.instr_class)
        assert int(InstrClass.INT) in classes
        assert int(InstrClass.MUL) in classes
        assert int(InstrClass.FP_ADD) in classes
        assert int(InstrClass.LOAD) in classes
        assert int(InstrClass.STORE) in classes
        assert int(InstrClass.BITFIELD) in classes

    def test_register_dependences_recorded(self):
        def body(b):
            b.li(1, 2)
            b.add(3, 1, 2)
        _, trace = _run(body)
        assert trace.dst[0] == 1
        assert trace.src1[1] == 1
        assert trace.src2[1] == 2
        assert trace.dst[1] == 3

    def test_run_program_wrapper(self):
        b = ProgramBuilder()
        b.li(1, 1)
        b.halt()
        trace = run_program(b.build())
        assert len(trace) == 1
