"""Tests for the integrated speculative-history cycle simulation."""

import pytest

from repro.experiments.configs import (
    path_scheme_history,
    pattern_history,
    tagless_engine,
)
from repro.guest.builder import ProgramBuilder
from repro.guest.vm import run_program
from repro.pipeline import MachineConfig, run_integrated
from repro.predictors import EngineConfig, simulate
from repro.trace.trace import Trace


def _trace(build_body, n=20_000):
    b = ProgramBuilder()
    build_body(b)
    return Trace.from_raw(run_program(b.build(), max_instructions=n))


class TestSpeculativeMatchesRetireOrder:
    """With fetch stalling on every misprediction, the speculative history
    visible at each prediction equals the retire-order history, so the two
    simulations must agree — this is the ablation that justifies the
    paper's (and our) trace-driven methodology."""

    def test_simple_loop(self):
        def body(b):
            b.li(1, 0)
            b.li(2, 3000)
            b.label("loop")
            b.addi(1, 1, 1)
            b.blt(1, 2, "loop")
            b.halt()
        trace = _trace(body)
        retire = simulate(trace, EngineConfig())
        integrated = run_integrated(trace, EngineConfig())
        assert (integrated.stats.conditional_mispred_rate
                == pytest.approx(retire.conditional_mispred_rate, abs=0.01))

    def test_history_dependent_branch(self):
        def body(b):
            b.li(1, 0)
            b.li(2, 4000)
            b.label("loop")
            b.andi(3, 1, 1)
            b.beq(3, 0, "even")
            b.addi(4, 4, 1)
            b.label("even")
            b.addi(1, 1, 1)
            b.blt(1, 2, "loop")
            b.halt()
        trace = _trace(body, n=40_000)
        retire = simulate(trace, EngineConfig())
        integrated = run_integrated(trace, EngineConfig())
        assert integrated.stats.conditional_mispred_rate < 0.02
        assert (integrated.stats.conditional_mispred_rate
                == pytest.approx(retire.conditional_mispred_rate, abs=0.01))

    @pytest.mark.parametrize("history", [
        pattern_history(9),
        path_scheme_history("ind jmp"),
        path_scheme_history("control"),
    ])
    def test_target_cache_rates_agree_on_perl(self, perl_trace, history):
        trace = perl_trace[:30_000]
        config = tagless_engine(history=history)
        retire = simulate(trace, config)
        integrated = run_integrated(trace, config)
        assert (integrated.stats.indirect_mispred_rate
                == pytest.approx(retire.indirect_mispred_rate, abs=0.03))


class TestTimingSide:
    def test_all_instructions_retire(self, perl_trace):
        trace = perl_trace[:10_000]
        result = run_integrated(trace, EngineConfig())
        assert result.stats.instructions == len(trace)
        assert result.cycles > 0
        assert 0.2 < result.ipc < 4.0

    def test_better_predictor_fewer_cycles(self, perl_trace):
        trace = perl_trace[:20_000]
        base = run_integrated(trace, EngineConfig())
        with_tc = run_integrated(
            trace, tagless_engine(history=path_scheme_history("ind jmp"))
        )
        assert with_tc.stats.indirect_mispred_rate < base.stats.indirect_mispred_rate
        assert with_tc.cycles < base.cycles

    def test_cycles_comparable_to_one_pass_model(self, perl_trace):
        from repro.pipeline import memory_penalties, run_timing

        trace = perl_trace[:15_000]
        machine = MachineConfig()
        penalties = memory_penalties(trace, machine)
        stats = simulate(trace, EngineConfig(), collect_mask=True)
        one_pass = run_timing(trace, machine, stats.mispredict_mask, penalties)
        integrated = run_integrated(trace, EngineConfig(), machine, penalties)
        ratio = integrated.cycles / one_pass.cycles
        assert 0.7 < ratio < 1.4
