"""Shared fixtures: small session-scoped traces and a hermetic trace cache."""

import os

import pytest

from repro.workloads import get_trace


@pytest.fixture(autouse=True)
def _hermetic_caches(tmp_path, monkeypatch):
    """Keep trace/result caching away from the user's real cache dirs."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "trace-cache"))
    monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "result-cache"))
    # A developer's REPRO_OBS must not make CLI-driven tests write ledgers.
    monkeypatch.delenv("REPRO_OBS", raising=False)


@pytest.fixture(scope="session")
def perl_trace():
    """A small perl-like trace shared by many tests (read-only)."""
    return get_trace("perl", n_instructions=60_000, use_cache=False)


@pytest.fixture(scope="session")
def gcc_trace():
    return get_trace("gcc", n_instructions=60_000, use_cache=False)


@pytest.fixture(scope="session")
def all_small_traces():
    """Tiny traces of every workload, for cross-benchmark checks."""
    from repro.workloads import workload_names

    return {
        name: get_trace(name, n_instructions=25_000, use_cache=False)
        for name in workload_names()
    }
