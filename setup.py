"""Setup shim: enables `pip install -e .` on environments without the
`wheel` package (pip falls back to the legacy `setup.py develop` path with
--no-use-pep517). All real metadata lives in pyproject.toml."""
from setuptools import setup

setup()
